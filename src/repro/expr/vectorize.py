"""Vectorization analysis: choose the mask and the repeat parameter.

This pass reproduces the AKG/TVM code-generation behaviour the paper's
comparison rests on (Sections IV-A and V):

1. **Lane group** -- the maximal suffix of the stage's output loop axes
   whose flattened extent is *contiguous in every tensor the stage
   touches* becomes the vector body.  For the standard MaxPool
   (Listing 1) the strided ``w*Sw`` access stops the group at ``C0``:
   16 of 128 lanes ("only 16 of 128 elements of the vector mask are
   set").  For the Im2col layout (Listing 2) the whole
   ``(Oh, Ow, C0)`` plane joins: the mask saturates.  For stride
   ``(1, 1)`` the ``(Ow, C0)`` pair is contiguous even in the plain
   layout, which is why the direct implementation wins Figure 8a.

2. **Repeat fold** -- if the group is narrower than the 128-lane body,
   the innermost remaining loop axis is folded into the hardware repeat
   field when every operand advances by whole 32-byte blocks and the
   *destination* either does not move (a reduction accumulating in
   place) or advances exactly contiguously.  The standard MaxPool folds
   the ``Kw`` reduction axis ("each vmax uses repetition to obtain the
   maximum value across the width of a patch"); the backward merge
   cannot fold anything because its destination is strided
   ("the vadd instructions only set 16 elements of the vector mask ...
   and repetition is not used").

3. **Wide groups** -- a group wider than 128 lanes consumes the repeat
   field itself (contiguous chunks), so no axis is folded; a single
   instruction covers up to ``255 * 128`` elements of the tile.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..dtypes import DType
from ..errors import LoweringError
from .axes import AffineExpr, Axis
from .nodes import Fill, body_loads
from .stage import Stage


@dataclass(frozen=True)
class VectorPlan:
    """The lowering decision for one stage."""

    #: Suffix of the output loop axes fused into the vector body.
    group_axes: tuple[Axis, ...]
    #: Flattened group extent in elements.
    lanes_total: int
    #: Loop axis folded into the hardware repeat field (narrow groups).
    fold_axis: Axis | None
    #: Remaining loop axes, outermost first (emitted as scalar loops).
    outer_axes: tuple[Axis, ...]
    #: True when the group is wider than one repeat body and is chunked
    #: through the repeat field.
    wide: bool

    @property
    def fold_extent(self) -> int:
        return self.fold_axis.extent if self.fold_axis else 1

    def instructions_per_tile(self, max_repeat: int, lanes_per_repeat: int) -> int:
        """Static issue count -- the quantity the paper's Section V
        reasons with (Oh*Ow*Kh vs Kh*Kw)."""
        outer = 1
        for ax in self.outer_axes:
            outer *= ax.extent
        if self.wide:
            full, tail = divmod(self.lanes_total, lanes_per_repeat)
            per_iter = -(-full // max_repeat) if full else 0
            per_iter += 1 if tail else 0
        else:
            per_iter = -(-self.fold_extent // max_repeat)
        return outer * per_iter


def _all_affines(stage: Stage) -> list[AffineExpr]:
    """Output plus every load, as flat affine element offsets."""
    affs = [stage.out_flat_affine()]
    affs.extend(ld.flat_affine() for ld in body_loads(stage.body))
    return affs


def stage_max_repeat(stage: Stage) -> int | None:
    """Hardware repeat ceiling specific to the stage's operation.

    Compare stages lower to vcmp+vsel pairs through the single CMPMASK
    register, which a repeat would clobber -- so they cannot repeat at
    all (returns 1).  ``None`` means the generic limit applies.
    """
    from .nodes import BinOp  # local import to avoid cycle at module load

    if isinstance(stage.body, BinOp) and stage.body.op == "eq":
        return 1
    return None


def plan_stage(
    stage: Stage,
    dtype: DType,
    allow_fold: bool = True,
    c0_only: bool = False,
) -> VectorPlan:
    """Analyse one stage; deterministic, no cost feedback.

    ``allow_fold`` / ``c0_only`` are the schedule knobs
    (:class:`repro.expr.schedule.Schedule`); defaults reproduce AKG's
    automatic behaviour.
    """
    affs = _all_affines(stage)
    lpb = dtype.lanes_per_block
    lpr = dtype.lanes_per_repeat
    no_repeat = not allow_fold or stage_max_repeat(stage) == 1

    # 1. Lane group: maximal contiguous suffix of the output loop axes.
    group: list[Axis] = []
    run = 1
    for ax in reversed(stage.axes):
        if c0_only and group:
            break  # "minimally on the C0 dimension" (Section IV-A)
        if all(a.coeff(ax) == run for a in affs):
            group.insert(0, ax)
            run *= ax.extent
        else:
            break
    lanes_total = run

    remaining = [ax for ax in stage.axes if ax not in group]
    loop_axes = remaining + list(stage.raxes)

    if lanes_total > lpr:
        return VectorPlan(
            group_axes=tuple(group),
            lanes_total=lanes_total,
            fold_axis=None,
            outer_axes=tuple(loop_axes),
            wide=True,
        )

    # 2. Repeat fold of the innermost remaining loop axis.
    fold: Axis | None = None
    if loop_axes and not no_repeat:
        cand = loop_axes[-1]
        if cand.extent > 1 and _fold_legal(stage, affs, cand, lanes_total, lpb):
            fold = cand
            loop_axes = loop_axes[:-1]

    return VectorPlan(
        group_axes=tuple(group),
        lanes_total=lanes_total,
        fold_axis=fold,
        outer_axes=tuple(loop_axes),
        wide=False,
    )


def _fold_legal(
    stage: Stage,
    affs: list[AffineExpr],
    cand: Axis,
    lanes_total: int,
    lpb: int,
) -> bool:
    """Can ``cand`` become the instruction's repeat dimension?"""
    out_aff = affs[0]
    c_out = out_aff.coeff(cand)
    if cand in stage.raxes:
        # Reduction axes never move the destination; the instruction
        # accumulates in place (sequential repeat semantics).
        if c_out != 0:
            raise LoweringError(
                "reduction axis moves the output -- stage is malformed"
            )
    else:
        # A data axis may fold only if the destination advances exactly
        # one vector body per repeat: a strided destination (the merge
        # step's scatter) defeats the repeat parameter.
        if c_out != lanes_total or lanes_total % lpb != 0:
            return False
    # Every source must advance by whole 32-byte blocks (or stay put).
    for aff in affs[1:]:
        if aff.coeff(cand) % lpb != 0:
            return False
    # Fill stages have no sources; folding is then driven by the
    # destination constraint alone, which was already checked.
    if isinstance(stage.body, Fill) and not stage.accumulate:
        return True
    return True
