"""A miniature TVM-style tensor-expression DSL.

The paper's "standard" pooling implementations are whatever TVM's
lowering makes of Listings 1-3: loop nests whose vectorization quality
is dictated by the access pattern.  This package reproduces that
pipeline:

* :mod:`repro.expr.axes`      -- loop axes and affine index arithmetic;
* :mod:`repro.expr.tensor`    -- tensor declarations with explicit
  layout strides (so the padded Im2col planes can be described);
* :mod:`repro.expr.nodes`     -- expression bodies (loads, binary ops,
  scalar ops, reductions);
* :mod:`repro.expr.stage`     -- one ``compute`` statement;
* :mod:`repro.expr.vectorize` -- the contiguity/fold analysis deciding
  the vector mask and the repeat parameter, following AKG's documented
  behaviour ("the inner loops of computations are vectorized, minimally
  on the C0 dimension ... when possible, the vector instructions are
  also issued with repeat factors", Section IV-A);
* :mod:`repro.expr.lower`     -- instruction emission into a Program.

The accelerated kernels use the same DSL for their arithmetic stages and
inject ``Im2Col``/``Col2Im`` as custom intrinsics through
:mod:`repro.tik`, mirroring the paper's ``decl_tensor_intrin`` usage.
"""

from .axes import Axis, AffineExpr
from .tensor import TensorDecl, Load
from .nodes import BinOp, ScalarOp, Reduce, Fill
from .stage import Stage, reduce_stage, elementwise_stage, scatter_accumulate_stage, fill_stage
from .vectorize import VectorPlan, plan_stage
from .schedule import DEFAULT_SCHEDULE, NAIVE_SCHEDULE, Schedule
from .lower import lower_stage, lower_stages, LoweringResult

__all__ = [
    "Axis",
    "AffineExpr",
    "TensorDecl",
    "Load",
    "BinOp",
    "ScalarOp",
    "Reduce",
    "Fill",
    "Stage",
    "reduce_stage",
    "elementwise_stage",
    "scatter_accumulate_stage",
    "fill_stage",
    "VectorPlan",
    "plan_stage",
    "Schedule",
    "DEFAULT_SCHEDULE",
    "NAIVE_SCHEDULE",
    "lower_stage",
    "lower_stages",
    "LoweringResult",
]
