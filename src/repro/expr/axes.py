"""Loop axes and affine index expressions.

Index expressions in the DSL are restricted to affine combinations of
axes (``h * Sh + red_h`` in Listing 1 is the canonical example).  The
restriction is what makes the vectorization analysis decidable: the
flat stride of every tensor along every loop axis is a constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count

from ..errors import LoweringError

_AXIS_IDS = count()


@dataclass(frozen=True, eq=False)
class Axis:
    """One loop axis with a compile-time extent.

    Axes use identity equality: two axes with the same name are distinct
    loops (as in TVM, where ``reduce_axis`` objects are unique).
    """

    name: str
    extent: int
    uid: int = field(default_factory=lambda: next(_AXIS_IDS))

    def __post_init__(self) -> None:
        if self.extent <= 0:
            raise LoweringError(
                f"axis {self.name!r} must have positive extent, got "
                f"{self.extent}"
            )

    # -- arithmetic producing AffineExpr --------------------------------
    def __mul__(self, k: int) -> "AffineExpr":
        return AffineExpr.from_axis(self) * k

    __rmul__ = __mul__

    def __add__(self, other) -> "AffineExpr":
        return AffineExpr.from_axis(self) + other

    __radd__ = __add__

    def __sub__(self, other) -> "AffineExpr":
        return AffineExpr.from_axis(self) - other

    def __repr__(self) -> str:
        return f"{self.name}[{self.extent}]"


@dataclass(frozen=True)
class AffineExpr:
    """``sum(coeff_i * axis_i) + const`` with integer coefficients."""

    terms: tuple[tuple[Axis, int], ...]
    const: int = 0

    @classmethod
    def from_axis(cls, axis: Axis) -> "AffineExpr":
        return cls(((axis, 1),), 0)

    @classmethod
    def constant(cls, value: int) -> "AffineExpr":
        return cls((), value)

    @classmethod
    def wrap(cls, value) -> "AffineExpr":
        if isinstance(value, AffineExpr):
            return value
        if isinstance(value, Axis):
            return cls.from_axis(value)
        if isinstance(value, int):
            return cls.constant(value)
        raise LoweringError(f"cannot use {value!r} as an index expression")

    def coeff(self, axis: Axis) -> int:
        for ax, c in self.terms:
            if ax is axis:
                return c
        return 0

    def axes(self) -> list[Axis]:
        return [ax for ax, _ in self.terms]

    def _merged(self, other: "AffineExpr", sign: int) -> "AffineExpr":
        coeffs: dict[Axis, int] = {}
        order: list[Axis] = []
        for ax, c in self.terms:
            coeffs[ax] = coeffs.get(ax, 0) + c
            if ax not in order:
                order.append(ax)
        for ax, c in other.terms:
            coeffs[ax] = coeffs.get(ax, 0) + sign * c
            if ax not in order:
                order.append(ax)
        terms = tuple((ax, coeffs[ax]) for ax in order if coeffs[ax] != 0)
        return AffineExpr(terms, self.const + sign * other.const)

    def __add__(self, other) -> "AffineExpr":
        return self._merged(AffineExpr.wrap(other), 1)

    __radd__ = __add__

    def __sub__(self, other) -> "AffineExpr":
        return self._merged(AffineExpr.wrap(other), -1)

    def __mul__(self, k: int) -> "AffineExpr":
        if not isinstance(k, int):
            raise LoweringError(
                f"affine expressions only scale by integers, got {k!r}"
            )
        return AffineExpr(
            tuple((ax, c * k) for ax, c in self.terms if c * k != 0),
            self.const * k,
        )

    __rmul__ = __mul__

    def evaluate(self, values: dict[Axis, int]) -> int:
        """Evaluate with concrete axis values (missing axes read as 0)."""
        return self.const + sum(
            c * values.get(ax, 0) for ax, c in self.terms
        )

    def min_value(self) -> int:
        """Smallest value over the axes' domains (coeffs may be negative)."""
        return self.const + sum(
            c * (ax.extent - 1) for ax, c in self.terms if c < 0
        )

    def max_value(self) -> int:
        """Largest value over the axes' domains."""
        return self.const + sum(
            c * (ax.extent - 1) for ax, c in self.terms if c > 0
        )

    def __repr__(self) -> str:
        parts = [f"{c}*{ax.name}" for ax, c in self.terms]
        if self.const or not parts:
            parts.append(str(self.const))
        return " + ".join(parts)
