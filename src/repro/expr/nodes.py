"""Expression bodies a stage may compute.

The grammar is deliberately small -- it is exactly what the paper's
listings need, and keeping every body one vector instruction wide means
the lowering never has to invent temporaries:

* ``Load``                       -- copy;
* ``BinOp(op, Load, Load)``      -- vadd/vsub/vmul/vmax/vmin/vcmp_eq;
* ``ScalarOp(op, Load, const)``  -- vadds/vmuls;
* ``Reduce(op, Load, raxes)``    -- max/sum reduction (Listing 1/2);
* ``Fill(value)``                -- vector_dup.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import LoweringError
from .axes import Axis
from .tensor import Load

#: DSL binary op -> vector-unit opcode.
BINOP_TO_ISA = {
    "add": "vadd",
    "sub": "vsub",
    "mul": "vmul",
    "max": "vmax",
    "min": "vmin",
    "eq": "vcmp_eq",
}

#: DSL reduction op -> (vector opcode, identity-value kind).
REDUCE_TO_ISA = {
    "max": ("vmax", "min_value"),
    "sum": ("vadd", "zero"),
}

SCALAROP_TO_ISA = {
    "adds": "vadds",
    "muls": "vmuls",
}


@dataclass(frozen=True)
class BinOp:
    """Element-wise combination of two loads."""

    op: str
    a: Load
    b: Load

    def __post_init__(self) -> None:
        if self.op not in BINOP_TO_ISA:
            raise LoweringError(f"unknown binary op {self.op!r}")
        if not isinstance(self.a, Load) or not isinstance(self.b, Load):
            raise LoweringError(
                "BinOp operands must be loads; compose multi-op "
                "expressions as separate stages with temporaries"
            )


@dataclass(frozen=True)
class ScalarOp:
    """Element-wise op with an immediate (vadds / vmuls)."""

    op: str
    a: Load
    imm: float

    def __post_init__(self) -> None:
        if self.op not in SCALAROP_TO_ISA:
            raise LoweringError(f"unknown scalar op {self.op!r}")


@dataclass(frozen=True)
class Reduce:
    """Reduction of a load over reduction axes (TVM ``reduce_axis``)."""

    op: str
    body: Load
    raxes: tuple[Axis, ...]

    def __post_init__(self) -> None:
        if self.op not in REDUCE_TO_ISA:
            raise LoweringError(f"unknown reduction op {self.op!r}")
        if not self.raxes:
            raise LoweringError("Reduce requires at least one axis")
        body_axes = self.body.axes()
        for ax in self.raxes:
            if ax not in body_axes:
                raise LoweringError(
                    f"reduction axis {ax.name!r} unused by the body"
                )


@dataclass(frozen=True)
class Fill:
    """Broadcast a constant (lowered to vector_dup)."""

    value: float


Body = Load | BinOp | ScalarOp | Reduce | Fill


def body_loads(body: Body) -> list[Load]:
    """All loads appearing in a body, in operand order."""
    if isinstance(body, Load):
        return [body]
    if isinstance(body, BinOp):
        return [body.a, body.b]
    if isinstance(body, ScalarOp):
        return [body.a]
    if isinstance(body, Reduce):
        return [body.body]
    if isinstance(body, Fill):
        return []
    raise LoweringError(f"unknown body node {type(body).__name__}")
