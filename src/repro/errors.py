"""Exception hierarchy for the DaVinci pooling reproduction.

Every error raised by the library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still distinguishing the broad failure classes below.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "LayoutError",
    "AlignmentError",
    "CapacityError",
    "IsaError",
    "CompileError",
    "MaskError",
    "RepeatError",
    "ScheduleError",
    "LoweringError",
    "TilingError",
    "PlanError",
    "SimulationError",
    "CoreFailure",
    "DeadlineExceeded",
    "FaultInjectionError",
    "SanitizerError",
    "ServeError",
    "AdmissionError",
    "QuotaExceededError",
    "WorkerFailure",
    "DeadlineError",
    "HedgeError",
    "CircuitOpenError",
    "IntegrityError",
]


class ReproError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class LayoutError(ReproError):
    """A tensor does not have the shape/layout an operation requires."""


class AlignmentError(LayoutError):
    """An address or extent violates a hardware alignment constraint."""


class CapacityError(ReproError):
    """A scratch-pad buffer allocation exceeds the buffer's capacity."""


class IsaError(ReproError):
    """An instruction was constructed with invalid operands or parameters."""


class CompileError(IsaError):
    """An instruction instance cannot be translated by the NumPy JIT
    (:mod:`repro.sim.compile`).  Raised by ``Instruction.compile()`` to
    signal a *data-dependent* inability (e.g. aliased operand regions
    whose sequential semantics a batched closure cannot reproduce); the
    compiler falls back to the interpreter for that instruction."""


class MaskError(IsaError):
    """A vector mask is malformed (wrong width, no lanes set, ...)."""


class RepeatError(IsaError):
    """A repeat count violates the hardware repeat limits."""


class ScheduleError(ReproError):
    """A schedule directive cannot be applied to the given computation."""


class LoweringError(ReproError):
    """The DSL lowering pass cannot map an expression onto the ISA."""


class TilingError(ReproError):
    """No legal tiling exists for the requested workload."""


class PlanError(ReproError):
    """An :class:`~repro.plan.planner.ExecutionPlan` is malformed or
    inconsistent with the workload it is being dispatched against
    (wrong direction, mismatched spec/dtype/extents, an unknown
    implementation or timing model, an illegal row chunk)."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent state while executing."""


class CoreFailure(SimulationError):
    """An AI Core failed mid-program (injected crash or detected memory
    corruption); the tile's partial effects must be discarded."""


class DeadlineExceeded(SimulationError):
    """A tile's makespan under the active timing model exceeded its
    cycle budget."""


class FaultInjectionError(SimulationError):
    """A fault plan is malformed (bad tile/core index, bit position,
    budget, ...) and cannot be injected deterministically."""


class SanitizerError(SimulationError):
    """The memory sanitizer detected an illegal access (out-of-bounds
    operand, read of uninitialized or stale scratch-pad data, an
    ``execute()`` touching bytes outside its declared regions, or a
    timeline race).  The message names the program, instruction index,
    operand, and offending byte range."""


class ServeError(ReproError):
    """A failure in the serving layer (:mod:`repro.serve`)."""


class AdmissionError(ServeError):
    """The service's bounded request queue is full (or the request was
    shed for higher-priority work); the submission was rejected for
    backpressure.

    Carries structured context for the caller's backoff logic:
    ``queue_depth`` (pending requests at rejection time), ``limit``
    (the service's ``queue_limit``) and ``retry_after`` (a suggested
    wait in seconds, derived from observed service latency when the
    service has any)."""

    def __init__(
        self,
        message: str,
        *,
        queue_depth: int | None = None,
        limit: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.queue_depth = queue_depth
        self.limit = limit
        self.retry_after = retry_after


class QuotaExceededError(ServeError):
    """The submitting tenant is at its pending-request quota; the
    submission was rejected without consuming shared queue capacity.

    ``tenant``/``pending``/``limit`` name the offender and its usage;
    ``retry_after`` is a suggested wait in seconds."""

    def __init__(
        self,
        message: str,
        *,
        tenant: str | None = None,
        pending: int | None = None,
        limit: int | None = None,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.tenant = tenant
        self.pending = pending
        self.limit = limit
        self.retry_after = retry_after


class WorkerFailure(ServeError):
    """A request exhausted its retry budget across worker-process
    crashes (the process-level analogue of
    :class:`~repro.errors.CoreFailure` + retry exhaustion)."""


class DeadlineError(ServeError):
    """A request missed its ``deadline_ms``.  Raised at admission (the
    deadline was already expired on arrival), at dequeue (it expired
    while queued) or by the stall watchdog (it expired in flight).
    ``stage`` names which; ``deadline_ms``/``elapsed_ms`` quantify the
    miss."""

    def __init__(
        self,
        message: str,
        *,
        deadline_ms: float | None = None,
        elapsed_ms: float | None = None,
        stage: str | None = None,
    ) -> None:
        super().__init__(message)
        self.deadline_ms = deadline_ms
        self.elapsed_ms = elapsed_ms
        self.stage = stage


class HedgeError(ServeError):
    """Every leg of a hedged request failed: the primary dispatch and
    its speculative re-dispatch both came back with worker errors."""


class IntegrityError(ServeError):
    """The integrity layer (:mod:`repro.serve.integrity`) caught a
    worker returning wrong bytes: a response whose service-side
    fingerprint does not match the worker-side one (payload corruption
    in transit), a dual-execution audit whose tie-break identified a
    corrupt slot, or a known-answer probe diverging from its golden
    fingerprint.

    ``slot`` names the worker believed corrupt (``None`` when a
    tie-break could not reach a majority), ``request`` is the
    :class:`~repro.serve.batching.PoolRequest` that exposed it, and
    ``divergence`` is a human-readable description of the mismatch
    (which fingerprints disagreed, and how)."""

    def __init__(
        self,
        message: str,
        *,
        slot: int | None = None,
        request: object | None = None,
        divergence: str | None = None,
    ) -> None:
        super().__init__(message)
        self.slot = slot
        self.request = request
        self.divergence = divergence


class CircuitOpenError(ServeError):
    """Every worker slot's circuit breaker is open (or exhausted its
    half-open probe budget); the submission was rejected fast instead
    of queueing behind a fleet that is known to be failing.
    ``retry_after`` is the soonest breaker-reopen horizon in seconds."""

    def __init__(
        self,
        message: str,
        *,
        retry_after: float | None = None,
    ) -> None:
        super().__init__(message)
        self.retry_after = retry_after
