"""Row-chunk tiling of pooling workloads.

A tile covers a contiguous range of *output* rows ``[oh0, oh1)`` of one
``(N, C1)`` slice.  The input rows it needs are derived from the pooling
geometry; global padding that falls inside the tile's row window becomes
the tile's local padding.  Implementations provide a
:class:`Footprint` describing the scratch-pad bytes a tile of given
geometry needs, and the planner binary-searches the largest chunk whose
every tile fits.

Invariant
---------

The planner's binary search is sound because footprints are *monotone*
in the chunk size: a tile covering more output rows loads at least as
many input rows, so every buffer requirement is non-decreasing in
``chunk``.  :func:`plan_chunk` therefore

1. probes ``chunk=1`` first -- if even single-output-row tiles overflow
   a scratch-pad it raises :class:`~repro.errors.TilingError` (the
   workload would need column tiling, which the paper's kernels do not
   use); this also establishes the search invariant that ``lo`` always
   fits;
2. binary-searches the largest fitting chunk in ``[1, oh]`` -- at the
   boundary where *exactly one* chunk size fits, that size is ``1`` and
   the probe already proved it legal, so the search degenerates
   correctly instead of dropping to an untested candidate;
3. optionally shrinks the winner so each slice yields at least
   ``min_tiles`` tiles (multi-core occupancy), which can only shrink --
   a smaller chunk always still fits by monotonicity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..config import ChipConfig
from ..dtypes import DType
from ..errors import TilingError
from ..isa.scu import Im2ColParams

#: Maps a tile geometry to required bytes per buffer, e.g.
#: ``{"UB": 131072, "L1": 65536}``.
Footprint = Callable[[Im2ColParams, DType], dict[str, int]]


@dataclass(frozen=True)
class TileGeom:
    """One tile: global coordinates plus the tile-local Im2Col geometry."""

    #: Output row range (global patch-grid coordinates).
    oh0: int
    oh1: int
    #: Input row range (global, unpadded image coordinates).
    ih0: int
    ih1: int
    #: Tile-local geometry: ``ih`` is the loaded row count and the
    #: paddings are the parts of the global halo this tile sees.
    params: Im2ColParams

    @property
    def out_rows(self) -> int:
        return self.oh1 - self.oh0

    @property
    def in_rows(self) -> int:
        return self.ih1 - self.ih0


def _tile_for_chunk(
    full: Im2ColParams, oh0: int, oh1: int
) -> TileGeom:
    """Geometry of the tile covering output rows [oh0, oh1)."""
    # Rows needed in padded coordinates: [oh0*Sh, (oh1-1)*Sh + Kh).
    top_padded = oh0 * full.sh
    bot_padded = (oh1 - 1) * full.sh + full.kh
    ih0 = max(0, top_padded - full.pt)
    ih1 = min(full.ih, bot_padded - full.pt)
    if ih1 <= ih0:
        raise TilingError(
            f"tile [{oh0}, {oh1}) lies entirely in the padding halo"
        )
    tile_pt = max(0, full.pt - top_padded)
    tile_pb = max(0, bot_padded - full.pt - full.ih)
    params = Im2ColParams(
        ih=ih1 - ih0,
        iw=full.iw,
        kh=full.kh,
        kw=full.kw,
        sh=full.sh,
        sw=full.sw,
        pt=tile_pt,
        pb=tile_pb,
        pl=full.pl,
        pr=full.pr,
    )
    got = params.out_hw()
    if got[0] != oh1 - oh0:
        raise TilingError(
            f"tile geometry inconsistency: expected {oh1 - oh0} output "
            f"rows, geometry gives {got[0]}"
        )
    return TileGeom(oh0=oh0, oh1=oh1, ih0=ih0, ih1=ih1, params=params)


def _tiles_of_chunk(full: Im2ColParams, chunk: int) -> list[TileGeom]:
    oh, _ = full.out_hw()
    return [
        _tile_for_chunk(full, oh0, min(oh0 + chunk, oh))
        for oh0 in range(0, oh, chunk)
    ]


def tiles_for_chunk(full: Im2ColParams, chunk: int) -> list[TileGeom]:
    """The tiles of an explicit row-chunk size, in output-row order.

    The lowering stage (:mod:`repro.plan.planner`) realizes an
    :class:`~repro.plan.planner.ExecutionPlan`'s chosen ``chunk`` through
    this function; the autotuner enumerates candidate chunks with it.
    Raises :class:`~repro.errors.TilingError` for chunks that produce an
    inconsistent tile geometry (e.g. a tile entirely inside the padding
    halo) -- it does *not* check scratch-pad capacity, which is the
    planner's (or the searcher's) job.
    """
    if chunk < 1:
        raise TilingError(f"row chunk must be >= 1, got {chunk}")
    return _tiles_of_chunk(full, chunk)


def _fits(
    tiles: list[TileGeom],
    footprint: Footprint,
    config: ChipConfig,
    dtype: DType,
) -> bool:
    specs = config.buffer_specs()
    for tile in tiles:
        need = footprint(tile.params, dtype)
        for buffer, nbytes in need.items():
            if buffer not in specs:
                raise TilingError(f"footprint names unknown buffer {buffer!r}")
            if nbytes > specs[buffer].capacity_bytes:
                return False
    return True


def chunk_fits(
    full: Im2ColParams,
    chunk: int,
    footprint: Footprint,
    config: ChipConfig,
    dtype: DType,
) -> bool:
    """Whether every tile of ``chunk`` fits the scratch-pad buffers.

    The autotuner's legality filter: candidate chunks that overflow (or
    cannot even form a consistent tiling) are excluded from the search
    space rather than raising mid-search.
    """
    try:
        return _fits(tiles_for_chunk(full, chunk), footprint, config, dtype)
    except TilingError:
        return False


def plan_chunk(
    full: Im2ColParams,
    footprint: Footprint,
    config: ChipConfig,
    dtype: DType,
    min_tiles: int = 1,
) -> int:
    """The heuristic row-chunk size (see the module-docstring invariant).

    The chunk is the largest that fits the scratch-pads, then shrunk (if
    needed) so each ``(N, C1)`` slice yields at least ``min_tiles``
    tiles.  This is the *decision* half of :func:`plan_row_chunks`,
    exposed so the planning stage (:mod:`repro.plan.planner`) can record
    the choice in an :class:`~repro.plan.planner.ExecutionPlan` and the
    autotuner can compare the heuristic against searched alternatives.
    """
    oh, _ = full.out_hw()
    lo, hi = 1, oh  # invariant: lo always fits if anything does
    if not _fits(_tiles_of_chunk(full, 1), footprint, config, dtype):
        raise TilingError(
            "even single-output-row tiles exceed the scratch-pad "
            "capacity; the workload needs column tiling"
        )
    best = 1
    while lo <= hi:
        mid = (lo + hi) // 2
        if _fits(_tiles_of_chunk(full, mid), footprint, config, dtype):
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    if min_tiles > 1:
        # Floor division guarantees at least min(min_tiles, oh) tiles.
        parallel_chunk = max(1, oh // min(min_tiles, oh))
        best = min(best, parallel_chunk)
    return best


def plan_row_chunks(
    full: Im2ColParams,
    footprint: Footprint,
    config: ChipConfig,
    dtype: DType,
    min_tiles: int = 1,
) -> list[TileGeom]:
    """Row tiling whose every tile fits the buffers.

    The chunk is the largest that fits the scratch-pads
    (:func:`plan_chunk`), then shrunk (if needed) so each ``(N, C1)``
    slice yields at least ``min_tiles`` tiles -- AKG "parallelizes the
    outer loops between the AI Cores" (Section IV-A), and when ``N*C1``
    alone cannot occupy the chip the row dimension is split further so
    idle cores get work.  Both compared implementations receive the same
    policy, so the comparison is never skewed by one side's larger
    footprint buying it extra parallelism for free.

    Returns the tiles in output-row order; a single tile covering the
    whole grid when neither capacity nor parallelism needs a split.
    Raises :class:`TilingError` when even single-row tiles overflow (the
    workload would need column tiling, which the paper's kernels do not
    use).
    """
    return _tiles_of_chunk(
        full, plan_chunk(full, footprint, config, dtype, min_tiles)
    )


def tiling_threshold(
    make_params: Callable[[int], Im2ColParams],
    footprint: Footprint,
    config: ChipConfig,
    dtype: DType,
    max_size: int = 4096,
) -> int:
    """Largest ``size`` whose whole image fits untiled (Figure 8 x-range).

    ``make_params(size)`` builds the geometry of a ``size x size`` input.
    Monotone in ``size``, so binary search.
    """

    def fits(size: int) -> bool:
        try:
            params = make_params(size)
        except Exception:
            return False
        need = footprint(params, dtype)
        specs = config.buffer_specs()
        return all(
            nbytes <= specs[buffer].capacity_bytes
            for buffer, nbytes in need.items()
        )

    # Skip sizes too small for the kernel geometry (make_params raises).
    lo = 1
    while lo <= max_size and not fits(lo):
        lo += 1
    if lo > max_size:
        raise TilingError("no input size fits untiled")
    hi = max_size
    best = lo
    while lo <= hi:
        mid = (lo + hi) // 2
        if fits(mid):
            best = mid
            lo = mid + 1
        else:
            hi = mid - 1
    return best
