"""Planning: tiling, execution plans, and the cost-model autotuner.

"this computation is divided in the C1 dimension so that a tile of size
(Ih, Iw, C0) is computed at a time ... unless further tiling is needed"
(Section V-A).  The planner row-chunks the output grid when a whole
``(Ih, Iw, C0)`` slice does not fit the Unified Buffer, and computes the
*tiling threshold* -- the largest untiled input -- that bounds the
x-axis of Figure 8.

* :mod:`repro.plan.tiling`  -- row-chunk tiling and footprint fitting.
* :mod:`repro.plan.planner` -- the plan -> lower -> dispatch pipeline
  behind the operator drivers (:class:`ExecutionPlan`,
  :func:`plan_default`, :func:`lower`, :func:`dispatch`).
* :mod:`repro.plan.autotune` -- exhaustive cost-model search over
  (row chunk, implementation variant, timing model) per workload, with
  a persisted best-config table the ops layer consults behind
  ``plan="autotuned"``.
"""

from .autotune import (
    DEFAULT_TABLE_PATH,
    AutotuneTable,
    SearchResult,
    Workload,
    autotune_grid,
    candidate_chunks,
    candidate_impls,
    default_table,
    grid_workloads,
    search,
    set_default_table,
    summarize_rows,
    tuned_plan,
)
from .planner import (
    EXECUTE_MODES,
    PLAN_KINDS,
    ExecutionPlan,
    Lowering,
    dispatch,
    dispatch_programs,
    lower,
    plan_cycles,
    plan_default,
    resolve_plan,
)
from .tiling import (
    Footprint,
    TileGeom,
    chunk_fits,
    plan_chunk,
    plan_row_chunks,
    tiles_for_chunk,
    tiling_threshold,
)

__all__ = [
    "TileGeom",
    "Footprint",
    "plan_row_chunks",
    "plan_chunk",
    "chunk_fits",
    "tiles_for_chunk",
    "tiling_threshold",
    "ExecutionPlan",
    "Lowering",
    "PLAN_KINDS",
    "EXECUTE_MODES",
    "plan_default",
    "resolve_plan",
    "lower",
    "dispatch",
    "dispatch_programs",
    "plan_cycles",
    "Workload",
    "SearchResult",
    "AutotuneTable",
    "DEFAULT_TABLE_PATH",
    "candidate_impls",
    "candidate_chunks",
    "search",
    "autotune_grid",
    "grid_workloads",
    "summarize_rows",
    "tuned_plan",
    "default_table",
    "set_default_table",
]
