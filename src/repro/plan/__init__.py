"""Tiling: fitting pooling tiles into the scratch-pad buffers.

"this computation is divided in the C1 dimension so that a tile of size
(Ih, Iw, C0) is computed at a time ... unless further tiling is needed"
(Section V-A).  The planner row-chunks the output grid when a whole
``(Ih, Iw, C0)`` slice does not fit the Unified Buffer, and computes the
*tiling threshold* -- the largest untiled input -- that bounds the
x-axis of Figure 8.
"""

from .tiling import TileGeom, plan_row_chunks, tiling_threshold, Footprint

__all__ = ["TileGeom", "plan_row_chunks", "tiling_threshold", "Footprint"]
