"""The plan -> lower -> dispatch pipeline behind the operator drivers.

Historically :func:`repro.ops.base.run_forward` and
:func:`~repro.ops.base.run_backward` were two ~200-line monoliths that
each re-implemented tiling, program building, cache lookup,
execute-mode selection and faults/sanitize/jit wiring -- there was no
reified "plan" a search loop could enumerate.  This module splits the
drivers into three explicit stages, mirroring the staged
tiling/transformation passes of compiler stacks for this accelerator
family (arXiv 2110.03901) and the cost-driven implementation selection
of the Indirect Convolution Algorithm (arXiv 1907.02129):

* **plan** -- :func:`plan_default` reifies every choice the old
  heuristic made (implementation variant, row-chunk size, execute mode,
  timing model, slice serialization) into a first-class, hashable,
  JSON-serializable :class:`ExecutionPlan`.  By construction its
  choices are byte-identical to the historical heuristic;
  :func:`resolve_plan` additionally accepts an explicit plan (the
  autotuner's output) or the opt-in ``"autotuned"`` table lookup.
* **lower** -- :func:`lower` turns a plan into programs: the *only*
  place :class:`~repro.tik.KernelBuilder` runs for pooling.  Programs,
  summaries and compiled JIT kernels are keyed into the
  :class:`~repro.sim.ProgramCache` by the plan
  (:func:`repro.sim.progcache.plan_key`), one entry per unique tile
  geometry, relocated clones per ``(N, C1)`` slice.
* **dispatch** -- :func:`dispatch` is the one shared driver: global
  memory setup, flat/grouped chip execution, cache/faults/retry/
  sanitize/compiled threading and result read-back, written exactly
  once for forward and backward.

The autotuner (:mod:`repro.plan.autotune`) searches the plan space
with :func:`plan_cycles`, which costs a candidate through the
``execute="cycles"`` analytic fast path -- no tensor data is ever
touched during search.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

import numpy as np

from ..config import ChipConfig
from ..dtypes import DType, dtype_by_name
from ..errors import LayoutError, PlanError
from ..isa.operand import MemRef
from ..isa.program import Program
from ..isa.scu import Im2ColParams
from ..sim import (
    Chip,
    ChipRunResult,
    ExecutionModel,
    GlobalMemory,
    ProgramCache,
    RunResult,
    compile_program,
    plan_key,
    resolve_model,
)
from ..tik import KernelBuilder
from .tiling import TileGeom, plan_chunk, tiles_for_chunk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ops.base import PoolingImpl, PoolRunResult
    from ..ops.spec import PoolSpec
    from ..sim import FaultInjector, FaultPlan, RetryPolicy

#: Plan directions: forward pooling and backward (input-gradient).
PLAN_KINDS = ("fwd", "bwd")

#: Execution modes a plan may carry (mirrors the drivers).
EXECUTE_MODES = ("numeric", "cycles", "jit")


@dataclass(frozen=True)
class ExecutionPlan:
    """Every decision needed to lower and dispatch one operator call.

    A plan is *workload-complete*: it names the direction, operator,
    implementation variant, dtype, pooling spec and tensor extents, plus
    the tunable choices -- row-chunk size, execute mode, timing model,
    slice serialization.  It is hashable (frozen dataclass of frozen
    parts), equality-comparable, and round-trips through JSON
    (:meth:`to_json` / :meth:`from_json`), so plans can key caches,
    persist in the autotune table, and travel across process boundaries
    attached to results.
    """

    #: "fwd" or "bwd".
    kind: str
    #: Registry name of the implementation variant (e.g. ``"im2col"``).
    impl: str
    #: "max" or "avg".
    op: str
    #: Forward only: also produce the Argmax mask.
    with_mask: bool
    #: :class:`~repro.dtypes.DType` name (e.g. ``"float16"``).
    dtype: str
    spec: "PoolSpec"
    #: Tensor extents: batch, channel blocks, input image rows/cols.
    n: int
    c1: int
    ih: int
    iw: int
    #: Output rows per tile (the tiling decision).
    chunk: int
    execute: str = "numeric"
    #: Timing-model name ("serial"/"pipelined").
    model: str = "serial"
    #: Backward only: keep each slice's chunks on one core.
    serialize_slices: bool = False

    @property
    def describe(self) -> str:
        """The implementation ``describe()`` string this plan lowers."""
        mask = "+mask" if self.with_mask else ""
        return f"{self.op}pool-{self.impl}{mask}"

    @property
    def num_slices(self) -> int:
        return self.n * self.c1

    @property
    def out_hw(self) -> tuple[int, int]:
        return self.spec.out_hw(self.ih, self.iw)

    @property
    def image(self) -> tuple[int, int, int, int]:
        """``(ih, iw, oh, ow)`` -- the extents baked into GM offsets."""
        return (self.ih, self.iw) + self.out_hw

    @property
    def full_params(self) -> Im2ColParams:
        return self.spec.with_image(self.ih, self.iw)

    @property
    def tiles(self) -> tuple[TileGeom, ...]:
        """The tile geometries this plan's chunk produces."""
        return tuple(tiles_for_chunk(self.full_params, self.chunk))

    def to_dict(self) -> dict:
        """JSON-serializable form (see :meth:`from_dict`)."""
        s = self.spec
        return {
            "kind": self.kind,
            "impl": self.impl,
            "op": self.op,
            "with_mask": self.with_mask,
            "dtype": self.dtype,
            "spec": {
                "kh": s.kh, "kw": s.kw, "sh": s.sh, "sw": s.sw,
                "pt": s.pt, "pb": s.pb, "pl": s.pl, "pr": s.pr,
            },
            "n": self.n, "c1": self.c1, "ih": self.ih, "iw": self.iw,
            "chunk": self.chunk,
            "execute": self.execute,
            "model": self.model,
            "serialize_slices": self.serialize_slices,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ExecutionPlan":
        from ..ops.spec import PoolSpec

        fields = dict(data)
        fields["spec"] = PoolSpec(**fields["spec"])
        try:
            return cls(**fields)
        except TypeError as exc:
            raise PlanError(f"malformed plan payload: {exc}") from None

    def to_json(self) -> str:
        """Canonical JSON encoding (sorted keys, no whitespace drift)."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "ExecutionPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise PlanError(f"malformed plan JSON: {exc}") from None
        return cls.from_dict(data)

    def validate(self) -> None:
        """Raise :class:`~repro.errors.PlanError` on malformed fields."""
        if self.kind not in PLAN_KINDS:
            raise PlanError(
                f"unknown plan kind {self.kind!r}; expected one of "
                f"{PLAN_KINDS}"
            )
        if self.op not in ("max", "avg"):
            raise PlanError(f"unknown pooling op {self.op!r}")
        if self.with_mask and (self.kind != "fwd" or self.op != "max"):
            raise PlanError(
                "with_mask is a forward MaxPool-only plan flag"
            )
        if self.execute not in EXECUTE_MODES:
            raise PlanError(
                f"unknown execution mode {self.execute!r}; expected one "
                f"of {EXECUTE_MODES}"
            )
        if self.chunk < 1:
            raise PlanError(f"row chunk must be >= 1, got {self.chunk}")
        if min(self.n, self.c1, self.ih, self.iw) < 1:
            raise PlanError(
                f"extents must be positive, got n={self.n} c1={self.c1} "
                f"ih={self.ih} iw={self.iw}"
            )
        try:
            dtype_by_name(self.dtype)
        except Exception:
            raise PlanError(f"unknown dtype {self.dtype!r}") from None
        try:
            resolve_model(self.model)
        except Exception:
            raise PlanError(
                f"unknown timing model {self.model!r}"
            ) from None


def plan_default(
    kind: str,
    impl: "PoolingImpl",
    spec: "PoolSpec",
    dtype: DType,
    n: int,
    c1: int,
    ih: int,
    iw: int,
    config: ChipConfig,
    execute: str = "numeric",
    model: "str | ExecutionModel | None" = None,
    serialize_slices: bool = False,
) -> ExecutionPlan:
    """The historical heuristic, reified.

    Chunk selection replicates the old drivers exactly: the largest
    row chunk that fits the scratch-pads (:func:`~repro.plan.tiling.
    plan_chunk`), shrunk so every core gets work -- forward always,
    backward unless ``serialize_slices`` pins each slice to one core.
    A plan produced here lowers and dispatches byte-identically to the
    pre-refactor monolithic drivers.
    """
    timing = resolve_model(model)
    full = spec.with_image(ih, iw)
    num_slices = n * c1
    if kind == "fwd":
        min_tiles = -(-config.num_cores // num_slices)
    else:
        min_tiles = (
            1 if serialize_slices
            else -(-config.num_cores // num_slices)
        )
    chunk = plan_chunk(
        full, impl.footprint, config, dtype, min_tiles=min_tiles
    )
    return ExecutionPlan(
        kind=kind,
        impl=impl.name,
        op=impl.op,
        with_mask=impl.with_mask,
        dtype=dtype.name,
        spec=spec,
        n=n,
        c1=c1,
        ih=ih,
        iw=iw,
        chunk=chunk,
        execute=execute,
        model=timing.name,
        serialize_slices=serialize_slices,
    )


def _impl_for_plan(plan: ExecutionPlan) -> "PoolingImpl":
    """Instantiate the plan's implementation through the registry."""
    from ..ops.registry import backward_impl, forward_impl

    try:
        if plan.kind == "fwd":
            return forward_impl(plan.impl, plan.op, plan.with_mask)
        return backward_impl(plan.impl, plan.op)
    except Exception as exc:
        raise PlanError(
            f"plan names an unusable implementation "
            f"{plan.impl!r}: {exc}"
        ) from None


def resolve_plan(
    plan: "str | ExecutionPlan",
    kind: str,
    impl: "PoolingImpl",
    spec: "PoolSpec",
    dtype: DType,
    n: int,
    c1: int,
    ih: int,
    iw: int,
    config: ChipConfig,
    execute: str = "numeric",
    model: "str | ExecutionModel | None" = None,
    serialize_slices: bool = False,
) -> tuple[ExecutionPlan, ExecutionModel, "PoolingImpl"]:
    """Resolve a driver's ``plan=`` argument into a concrete plan.

    ``"default"`` (the default) reproduces the historical heuristic
    byte-identically.  ``"autotuned"`` consults the persisted best-config
    table (:mod:`repro.plan.autotune`); workloads with no tuned entry
    fall back to the default plan, so the flag is always safe to pass.
    An explicit :class:`ExecutionPlan` is validated against the workload
    (direction, spec, dtype, extents, op/mask must match -- the plan's
    implementation variant, chunk, execute mode and timing model win
    over the call's arguments).

    Returns ``(plan, timing, impl)`` where ``timing`` is the resolved
    :class:`~repro.sim.ExecutionModel` (the caller's possibly-custom
    model object for ``"default"`` plans, so instance-based models keep
    working) and ``impl`` is the implementation instance to lower.
    """
    if isinstance(plan, str):
        if plan == "default":
            timing = resolve_model(model)
            return (
                plan_default(
                    kind, impl, spec, dtype, n, c1, ih, iw, config,
                    execute=execute, model=timing,
                    serialize_slices=serialize_slices,
                ),
                timing,
                impl,
            )
        if plan == "autotuned":
            from .autotune import tuned_plan

            tuned = tuned_plan(
                kind=kind, impl=impl, spec=spec, dtype=dtype,
                n=n, c1=c1, ih=ih, iw=iw, config=config,
                execute=execute, serialize_slices=serialize_slices,
            )
            if tuned is None:
                timing = resolve_model(model)
                return (
                    plan_default(
                        kind, impl, spec, dtype, n, c1, ih, iw, config,
                        execute=execute, model=timing,
                        serialize_slices=serialize_slices,
                    ),
                    timing,
                    impl,
                )
            plan = tuned
        else:
            raise PlanError(
                f"unknown plan {plan!r}; expected 'default', "
                "'autotuned' or an ExecutionPlan"
            )
    if not isinstance(plan, ExecutionPlan):
        raise PlanError(
            f"plan must be a string or ExecutionPlan, got "
            f"{type(plan).__name__}"
        )
    plan.validate()
    if plan.kind != kind:
        raise PlanError(
            f"plan direction {plan.kind!r} does not match the "
            f"{kind!r} driver"
        )
    if plan.spec != spec:
        raise PlanError(
            f"plan spec {plan.spec} does not match the workload "
            f"spec {spec}"
        )
    if plan.dtype != dtype.name:
        raise PlanError(
            f"plan dtype {plan.dtype!r} does not match the input "
            f"dtype {dtype.name!r}"
        )
    if (plan.n, plan.c1, plan.ih, plan.iw) != (n, c1, ih, iw):
        raise PlanError(
            f"plan extents (n={plan.n}, c1={plan.c1}, ih={plan.ih}, "
            f"iw={plan.iw}) do not match the workload "
            f"(n={n}, c1={c1}, ih={ih}, iw={iw})"
        )
    if plan.op != impl.op or plan.with_mask != impl.with_mask:
        raise PlanError(
            f"plan operator {plan.op!r} (mask={plan.with_mask}) does "
            f"not match the requested {impl.op!r} "
            f"(mask={impl.with_mask})"
        )
    resolved = impl if plan.impl == impl.name else _impl_for_plan(plan)
    return plan, resolve_model(plan.model), resolved


# ---------------------------------------------------------------------------
# Lowering.
# ---------------------------------------------------------------------------

def _mask_plane_refs(
    geom: TileGeom,
    spec: "PoolSpec",
    slice_idx: int,
    oh_full: int,
    ow: int,
    c0: int,
    dtype: DType,
    name: str = "mask",
) -> list[MemRef]:
    """GM regions of each (kh, kw) plane's rows [oh0, oh1) for a tile."""
    refs = []
    rows = geom.out_rows * ow * c0
    for i in range(spec.kh):
        for j in range(spec.kw):
            base = (
                ((slice_idx * spec.kh + i) * spec.kw + j) * oh_full + geom.oh0
            ) * ow * c0
            refs.append(MemRef(name, base, rows, dtype))
    return refs


def _build_tile_program(
    plan: ExecutionPlan,
    impl: "PoolingImpl",
    slice_idx: int,
    tile_idx: int,
    geom: TileGeom,
    config: ChipConfig,
    dtype: DType,
) -> Program:
    """Build one tile's program -- the single shared ``build`` closure.

    This is the only place :class:`~repro.tik.KernelBuilder` runs for
    pooling; the forward/backward distinction collapses to which
    global-memory operands get wired into the
    :class:`~repro.ops.base.TileContext`.
    """
    from ..ops.base import TileContext

    ih, iw, oh, ow = plan.image
    c0 = dtype.c0
    spec = plan.spec
    b = KernelBuilder(
        config,
        dtype,
        name=f"{impl.describe()}-s{slice_idx}-t{tile_idx}",
    )
    needs_mask = plan.with_mask or (plan.kind == "bwd" and plan.op == "max")
    mask_planes = (
        _mask_plane_refs(geom, spec, slice_idx, oh, ow, c0, dtype)
        if needs_mask
        else None
    )
    if plan.kind == "fwd":
        ctx = TileContext(
            builder=b,
            geom=geom,
            spec=spec,
            dtype=dtype,
            gm_in=MemRef(
                "x",
                (slice_idx * ih + geom.ih0) * iw * c0,
                geom.in_rows * iw * c0,
                dtype,
            ),
            gm_out=MemRef(
                "out",
                (slice_idx * oh + geom.oh0) * ow * c0,
                geom.out_rows * ow * c0,
                dtype,
            ),
            gm_mask_planes=mask_planes,
        )
    else:
        ctx = TileContext(
            builder=b,
            geom=geom,
            spec=spec,
            dtype=dtype,
            gm_grad=MemRef(
                "grad",
                (slice_idx * oh + geom.oh0) * ow * c0,
                geom.out_rows * ow * c0,
                dtype,
            ),
            gm_dx=MemRef(
                "dx",
                (slice_idx * ih + geom.ih0) * iw * c0,
                geom.in_rows * iw * c0,
                dtype,
            ),
            gm_mask_planes=mask_planes,
        )
    impl.build_tile(ctx)
    return b.program


def _slice_deltas(plan: ExecutionPlan, slice_idx: int) -> dict[str, int]:
    """Relocation deltas of one ``(N, C1)`` slice's GM operands."""
    ih, iw, oh, ow = plan.image
    c0 = dtype_by_name(plan.dtype).c0
    spec = plan.spec
    if plan.kind == "fwd":
        deltas = {
            "x": slice_idx * ih * iw * c0,
            "out": slice_idx * oh * ow * c0,
        }
        if plan.with_mask:
            deltas["mask"] = slice_idx * spec.kh * spec.kw * oh * ow * c0
    else:
        deltas = {
            "grad": slice_idx * oh * ow * c0,
            "dx": slice_idx * ih * iw * c0,
        }
        if plan.op == "max":
            deltas["mask"] = slice_idx * spec.kh * spec.kw * oh * ow * c0
    return deltas


@dataclass
class Lowering:
    """The lowered form of one plan: programs per slice, plus the
    cache-shared summaries and compiled kernels when a cache is used.

    ``groups[s][t]`` is slice ``s``'s tile-``t`` program.  Under
    ``execute="cycles"`` with a cache the groups alias the base
    programs (cycle-identical clones need not be materialised);
    otherwise each slice holds relocated clones (or, uncached, fresh
    per-slice builds).
    """

    plan: ExecutionPlan
    tiles: tuple[TileGeom, ...]
    groups: list[list[Program]]
    summaries: list[list[RunResult]] | None = None
    kernels: list[list] | None = None

    def flat_programs(self) -> list[Program]:
        return [prog for group in self.groups for prog in group]

    def flat_summaries(self) -> list[RunResult] | None:
        if self.summaries is None:
            return None
        return [s for group in self.summaries for s in group]

    def flat_kernels(self) -> list | None:
        if self.kernels is None:
            return None
        return [k for group in self.kernels for k in group]


def lower(
    plan: ExecutionPlan,
    config: ChipConfig,
    cache: ProgramCache | None = None,
    collect_trace: bool = True,
    timing: "str | ExecutionModel | None" = None,
    impl: "PoolingImpl | None" = None,
) -> Lowering:
    """Lower a plan to tile programs (stage two of the pipeline).

    With a cache, one program is lowered per unique tile geometry --
    keyed by :func:`repro.sim.progcache.plan_key`, so two equal plans
    share entries -- with memoized summaries (and, under
    ``execute="jit"``, memoized compiled kernels) and relocated clones
    per ``(N, C1)`` slice.  ``cache=None`` restores the uncached
    per-tile lowering the equivalence tests compare against.

    ``timing`` defaults to the plan's model name; drivers pass their
    resolved (possibly instance-based) model through so summaries are
    produced under the exact object that will dispatch.  ``impl``
    likewise defaults to a registry instantiation of ``plan.impl``.
    """
    if impl is None:
        impl = _impl_for_plan(plan)
    m = resolve_model(plan.model if timing is None else timing)
    dtype = dtype_by_name(plan.dtype)
    execute = plan.execute
    tiles = plan.tiles
    num_slices = plan.num_slices

    if cache is None:
        groups = [
            [
                _build_tile_program(
                    plan, impl, slice_idx, tile_idx, geom, config, dtype
                )
                for tile_idx, geom in enumerate(tiles)
            ]
            for slice_idx in range(num_slices)
        ]
        kernels = (
            [[compile_program(p, config) for p in group] for group in groups]
            if execute == "jit"
            else None
        )
        return Lowering(plan=plan, tiles=tiles, groups=groups,
                        kernels=kernels)

    base: list[tuple[Program, RunResult]] = []
    base_kernels: list = []
    for tile_idx, geom in enumerate(tiles):
        key = plan_key(plan, geom, config)
        prog = cache.get_or_build(
            key,
            lambda t=tile_idx, g=geom: _build_tile_program(
                plan, impl, 0, t, g, config, dtype
            ),
        )
        base.append(
            (
                prog,
                cache.summary(key, prog, config, collect_trace, model=m),
            )
        )
        if execute == "jit":
            base_kernels.append(cache.compiled(key, prog, config))
    kernels = (
        [list(base_kernels) for _ in range(num_slices)]
        if execute == "jit"
        else None
    )
    if execute == "cycles":
        # Cycle-identical clones need not even be materialised.
        groups = [[prog for prog, _ in base] for _ in range(num_slices)]
    else:
        groups = []
        for slice_idx in range(num_slices):
            deltas = _slice_deltas(plan, slice_idx)
            groups.append(
                [
                    prog.relocate(
                        deltas,
                        name=(
                            f"{impl.describe()}"
                            f"-s{slice_idx}-t{tile_idx}"
                        ),
                    )
                    for tile_idx, (prog, _) in enumerate(base)
                ]
            )
    summaries = [[summ for _, summ in base] for _ in range(num_slices)]
    return Lowering(plan=plan, tiles=tiles, groups=groups,
                    summaries=summaries, kernels=kernels)


# ---------------------------------------------------------------------------
# Dispatch.
# ---------------------------------------------------------------------------

def dispatch_programs(
    config: ChipConfig,
    dtype: DType,
    programs: list[Program],
    gm: GlobalMemory | None,
    collect_trace: bool = True,
    execute: str = "numeric",
    model: "str | ExecutionModel | None" = None,
) -> ChipRunResult:
    """Run a flat program list on a fresh chip -- the low-level shared
    dispatch used by the convolution drivers (:mod:`repro.ops.conv2d`),
    which build their programs directly rather than through plans."""
    chip = Chip(config, dtype)
    return chip.run_tiles(
        programs, gm, collect_trace=collect_trace, execute=execute,
        model=resolve_model(model),
    )


def dispatch(
    plan: ExecutionPlan,
    lowering: Lowering,
    config: ChipConfig,
    x: np.ndarray | None = None,
    grad: np.ndarray | None = None,
    mask: np.ndarray | None = None,
    collect_trace: bool = True,
    timing: "str | ExecutionModel | None" = None,
    faults: "FaultPlan | FaultInjector | None" = None,
    retry: "RetryPolicy | None" = None,
    sanitize: bool = False,
) -> "PoolRunResult":
    """Execute a lowered plan (stage three): the one shared driver.

    Global-memory setup, grouped-vs-flat chip execution, resilience /
    sanitizer / compiled-kernel threading and result read-back happen
    here exactly once for both directions.  Under
    ``execute="cycles"`` no global memory exists and the result carries
    ``output=None`` (and ``mask=None``); numeric and JIT runs read the
    outputs back from simulated global memory.
    """
    from ..ops.base import PoolRunResult

    m = resolve_model(plan.model if timing is None else timing)
    dtype = dtype_by_name(plan.dtype)
    execute = plan.execute
    ih, iw, oh, ow = plan.image
    c0 = dtype.c0
    num_slices = plan.num_slices
    spec = plan.spec

    if execute == "cycles":
        gm = None
    else:
        gm = GlobalMemory()
        if plan.kind == "fwd":
            if x is None:
                raise LayoutError(
                    "forward dispatch requires the input tensor"
                )
            gm.add("x", x)
            gm.zeros("out", num_slices * oh * ow * c0, dtype)
            if plan.with_mask:
                gm.zeros(
                    "mask",
                    num_slices * spec.kh * spec.kw * oh * ow * c0,
                    dtype,
                )
        else:
            if grad is None:
                raise LayoutError(
                    "backward dispatch requires the gradient tensor"
                )
            gm.add("grad", grad)
            if mask is not None:
                gm.add("mask", mask)
            gm.zeros("dx", num_slices * ih * iw * c0, dtype)

    chip = Chip(config, dtype)
    if plan.serialize_slices:
        result = chip.run_tile_groups(
            lowering.groups,
            gm,
            collect_trace=collect_trace,
            execute=execute,
            summaries=lowering.summaries,
            model=m,
            faults=faults,
            retry=retry,
            sanitize=sanitize,
            compiled=lowering.kernels,
        )
    else:
        result = chip.run_tiles(
            lowering.flat_programs(),
            gm,
            collect_trace=collect_trace,
            execute=execute,
            summaries=lowering.flat_summaries(),
            model=m,
            faults=faults,
            retry=retry,
            sanitize=sanitize,
            compiled=lowering.flat_kernels(),
        )

    if execute == "cycles":
        return PoolRunResult(
            output=None, mask=None, chip=result, tiles=lowering.tiles,
            timing_model=m.name, plan=plan,
        )
    if plan.kind == "fwd":
        out = gm.read("out", (plan.n, plan.c1, oh, ow, c0))
        out_mask = (
            gm.read(
                "mask", (plan.n, plan.c1, spec.kh, spec.kw, oh, ow, c0)
            )
            if plan.with_mask
            else None
        )
        return PoolRunResult(
            output=out, mask=out_mask, chip=result, tiles=lowering.tiles,
            timing_model=m.name, plan=plan,
        )
    dx = gm.read("dx", (plan.n, plan.c1, ih, iw, c0))
    return PoolRunResult(
        output=dx, mask=None, chip=result, tiles=lowering.tiles,
        timing_model=m.name, plan=plan,
    )


def plan_cycles(
    plan: ExecutionPlan,
    config: ChipConfig,
    cache: ProgramCache | None = None,
    impl: "PoolingImpl | None" = None,
) -> "PoolRunResult":
    """Cost a plan through the analytic cycles-only fast path.

    The autotuner's costing primitive: lowers and dispatches the plan
    with ``execute="cycles"`` -- no tensor data exists, no NumPy pass
    runs, and the returned result carries only cycle accounting.  The
    cost model is data-independent, so these cycles equal what numeric
    execution of the same plan would report.
    """
    costed = replace(plan, execute="cycles")
    lowering = lower(
        costed, config, cache=cache, collect_trace=False, impl=impl
    )
    return dispatch(costed, lowering, config, collect_trace=False)
