"""Cost-model-driven autotuning over the plan space.

The cycles-only fast path (``execute="cycles"``, ~60x the interpreter)
makes exhaustive plan search cheap: for one workload, every candidate
(row-chunk size, implementation variant, timing model) is costed
analytically through :func:`repro.plan.planner.plan_cycles` -- no
tensor data exists and no numeric pass ever runs during search, so
search cost is a few milliseconds per candidate.  This mirrors the
tiling/transformation search stages of compiler stacks for this
accelerator family (arXiv 2110.03901) and the cost-driven
implementation selection of the Indirect Convolution Algorithm
(arXiv 1907.02129).

Numerics-preserving search space
--------------------------------

The searcher only proposes plans whose *numeric outputs are
bit-identical* to the heuristic default plan:

* **Row chunk** (forward only): forward tiles partition the output
  grid, each output element is reduced from exactly one window in one
  tile, so the per-element reduction order is chunk-independent.
  Backward row chunks change how fp16 accumulate-DMA sums regroup, so
  backward keeps the default chunk.
* **Implementation variant**: forward MaxPool variants are asserted
  bit-exact against the golden model (outputs *and* masks) by every
  fuzz route, so max-pool search ranges over all registered variants
  (mask workloads over the mask-capable ones).  AvgPool variants are
  only tolerance-checked cross-impl (fp16 summation regrouping), so
  avg -- and all backward -- workloads keep the requested variant.
* **Timing model**: cost-only by construction; numeric outputs are
  model-independent, and the pipelined makespan never exceeds serial.

The best plan per workload is persisted in a byte-deterministic JSON
table (:data:`DEFAULT_TABLE_PATH`) that the ops layer consults behind
the opt-in ``plan="autotuned"`` driver argument; workloads without a
tuned entry silently fall back to the default plan.
"""

from __future__ import annotations

import json
import os
import statistics
import zlib
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import TYPE_CHECKING, Iterable, Sequence

from ..config import ChipConfig
from ..dtypes import DType, dtype_by_name
from ..errors import PlanError
from ..isa.scu import Im2ColParams
from ..sim import ProgramCache
from .planner import ExecutionPlan, plan_cycles, plan_default
from .tiling import Footprint, chunk_fits, plan_chunk, tiles_for_chunk

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..ops.base import PoolingImpl
    from ..ops.spec import PoolSpec

#: Where the ops layer looks for the persisted best-config table,
#: relative to the working directory (the repo root in CI and the
#: bench).  Override per-process with :func:`set_default_table` or the
#: ``REPRO_AUTOTUNE_TABLE`` environment variable.
DEFAULT_TABLE_PATH = Path("results") / "autotune_table.json"


def _config_fingerprint(config: ChipConfig) -> str:
    """Stable fingerprint of a chip config (PYTHONHASHSEED-safe)."""
    return f"{zlib.crc32(repr(config).encode()):08x}"


@dataclass(frozen=True)
class Workload:
    """One tunable operator workload: everything a plan depends on
    except the tunable choices themselves."""

    kind: str
    op: str
    #: The *requested* implementation variant -- the baseline the
    #: search must beat, and the fallback for op/direction combinations
    #: where cross-variant bit-identity is not guaranteed.
    impl: str
    with_mask: bool
    dtype: str
    spec: "PoolSpec"
    n: int
    c1: int
    ih: int
    iw: int
    serialize_slices: bool = False

    @property
    def full_params(self) -> Im2ColParams:
        return self.spec.with_image(self.ih, self.iw)

    def key(self, config: ChipConfig) -> str:
        """Canonical table key: workload identity + config fingerprint."""
        s = self.spec
        return (
            f"{self.kind}:{self.op}:{self.impl}:mask{int(self.with_mask)}"
            f":{self.dtype}:n{self.n}:c1{self.c1}:ih{self.ih}:iw{self.iw}"
            f":k{s.kh}x{s.kw}:s{s.sh}x{s.sw}:p{s.pt}.{s.pb}.{s.pl}.{s.pr}"
            f":ser{int(self.serialize_slices)}"
            f":cfg{_config_fingerprint(config)}"
        )

    @classmethod
    def of_impl(
        cls,
        kind: str,
        impl: "PoolingImpl",
        spec: "PoolSpec",
        dtype: DType,
        n: int,
        c1: int,
        ih: int,
        iw: int,
        serialize_slices: bool = False,
    ) -> "Workload":
        """The workload a driver call with this implementation names."""
        return cls(
            kind=kind, op=impl.op, impl=impl.name,
            with_mask=impl.with_mask, dtype=dtype.name, spec=spec,
            n=n, c1=c1, ih=ih, iw=iw,
            serialize_slices=serialize_slices,
        )


def _impl_instance(workload: Workload, name: str) -> "PoolingImpl":
    from ..ops.registry import backward_impl, forward_impl

    if workload.kind == "fwd":
        return forward_impl(name, workload.op, workload.with_mask)
    return backward_impl(name, workload.op)


def candidate_impls(workload: Workload) -> list[str]:
    """Implementation variants that preserve bit-identical numerics.

    Forward MaxPool ranges over every registered variant (every fuzz
    route asserts their outputs and masks bit-exact against the golden
    model); mask-saving workloads are restricted to the mask-capable
    ones.  AvgPool forward (tolerance-only cross-variant agreement) and
    all backward workloads (fp16 accumulation regrouping) keep the
    requested variant.  Delegates the equivalence classes to
    :func:`repro.ops.registry.bit_exact_variants`.
    """
    from ..ops.registry import bit_exact_variants

    return bit_exact_variants(
        workload.kind, workload.op, workload.with_mask,
        requested=workload.impl,
    )


def candidate_chunks(
    full: Im2ColParams,
    footprint: Footprint,
    config: ChipConfig,
    dtype: DType,
    mode: str = "exhaustive",
    extra: Iterable[int] = (),
) -> list[int]:
    """Legal candidate row-chunk sizes, ascending and deduplicated.

    ``mode="exhaustive"`` enumerates every chunk in ``[1, oh]`` that
    fits the scratch-pads, keeping one representative per distinct
    tiling (two chunk values at or above ``oh`` produce the same single
    tile).  ``mode="coarse"`` keeps the search O(log oh): 1, the powers
    of two, and ``oh`` (whole grid) -- the shape the smoke jobs and the
    fuzz route use.  ``extra`` chunks (e.g. the heuristic default) are
    always considered.
    """
    if mode not in ("exhaustive", "coarse"):
        raise PlanError(f"unknown chunk search mode {mode!r}")
    oh, _ = full.out_hw()
    if mode == "exhaustive":
        raw: Iterable[int] = range(1, oh + 1)
    else:
        coarse = {1, oh}
        p = 2
        while p < oh:
            coarse.add(p)
            p *= 2
        raw = sorted(coarse)
    candidates = sorted(set(raw) | {c for c in extra if 1 <= c <= oh})
    out: list[int] = []
    seen_tilings: set[tuple[int, ...]] = set()
    for chunk in candidates:
        if not chunk_fits(full, chunk, footprint, config, dtype):
            continue
        signature = tuple(t.oh0 for t in tiles_for_chunk(full, chunk))
        if signature in seen_tilings:
            continue
        seen_tilings.add(signature)
        out.append(chunk)
    return out


@dataclass
class SearchResult:
    """Outcome of one workload's plan search."""

    workload: Workload
    #: The winning plan (``execute="numeric"``; the driver swaps the
    #: execute mode in at dispatch time).
    best: ExecutionPlan
    best_cycles: int
    #: The heuristic default plan and its cost -- the yardstick.
    baseline: ExecutionPlan
    baseline_cycles: int
    #: Number of candidate plans costed.
    evaluated: int

    @property
    def cycles_won(self) -> float:
        """Baseline-over-best cycle ratio (>= 1.0 by construction)."""
        return self.baseline_cycles / self.best_cycles

    def to_entry(self) -> dict:
        """The table record (integers only: byte-deterministic)."""
        return {
            "plan": self.best.to_dict(),
            "cycles": int(self.best_cycles),
            "baseline_plan": self.baseline.to_dict(),
            "baseline_cycles": int(self.baseline_cycles),
            "evaluated": int(self.evaluated),
        }


def search(
    workload: Workload,
    config: ChipConfig,
    models: Sequence[str] = ("serial", "pipelined"),
    chunks: str = "exhaustive",
    cache: ProgramCache | None = None,
) -> SearchResult:
    """Exhaustively cost the workload's plan space and pick the winner.

    The space is the cross product of :func:`candidate_impls`,
    :func:`candidate_chunks` (per implementation -- footprints differ,
    so legality does too; backward workloads keep the default chunk)
    and ``models``.  Costing runs through the analytic cycles-only
    path (:func:`~repro.plan.planner.plan_cycles`) against a private
    program cache, so candidates sharing tile geometries amortize
    lowering.  The heuristic default plan is always part of the space,
    so ``best_cycles <= baseline_cycles`` and the won ratio is >= 1.0.

    Iteration order is deterministic (registry order, ascending chunks,
    caller's model order) and the winner is taken by strict ``<``, so
    repeated searches of one workload always return the same plan --
    the property the persisted table's byte-identity rests on.
    """
    dtype = dtype_by_name(workload.dtype)
    full = workload.full_params
    requested = _impl_instance(workload, workload.impl)
    baseline = plan_default(
        workload.kind, requested, workload.spec, dtype,
        workload.n, workload.c1, workload.ih, workload.iw, config,
        execute="numeric", model="serial",
        serialize_slices=workload.serialize_slices,
    )
    if cache is None:
        cache = ProgramCache()

    def cost(plan: ExecutionPlan, impl: "PoolingImpl") -> int:
        return plan_cycles(plan, config, cache=cache, impl=impl).cycles

    baseline_cycles = cost(baseline, requested)
    best, best_cycles = baseline, baseline_cycles
    evaluated = 1
    seen = {(baseline.impl, baseline.chunk, baseline.model)}
    for impl_name in candidate_impls(workload):
        impl = (
            requested if impl_name == workload.impl
            else _impl_instance(workload, impl_name)
        )
        if workload.kind == "fwd":
            impl_chunks = candidate_chunks(
                full, impl.footprint, config, dtype, mode=chunks,
                extra=(baseline.chunk,) if impl_name == workload.impl
                else (),
            )
        else:
            # Backward: chunking changes fp16 accumulation grouping.
            impl_chunks = [
                plan_chunk(
                    full, impl.footprint, config, dtype,
                    min_tiles=(
                        1 if workload.serialize_slices
                        else -(-config.num_cores
                               // (workload.n * workload.c1))
                    ),
                )
            ]
        for chunk in impl_chunks:
            for model in models:
                combo = (impl_name, chunk, model)
                if combo in seen:
                    continue
                seen.add(combo)
                plan = replace(
                    baseline, impl=impl_name, chunk=chunk, model=model,
                    with_mask=impl.with_mask,
                )
                cycles = cost(plan, impl)
                evaluated += 1
                if cycles < best_cycles:
                    best, best_cycles = plan, cycles
    return SearchResult(
        workload=workload, best=best, best_cycles=best_cycles,
        baseline=baseline, baseline_cycles=baseline_cycles,
        evaluated=evaluated,
    )


class AutotuneTable:
    """The persisted workload -> best-plan table.

    Entries map :meth:`Workload.key` strings to the integer-only
    records of :meth:`SearchResult.to_entry`; serialization sorts keys
    and uses fixed formatting, so two runs of the same deterministic
    search produce byte-identical files (the CI smoke job asserts
    exactly this).
    """

    VERSION = 1

    def __init__(self, entries: dict[str, dict] | None = None) -> None:
        self.entries: dict[str, dict] = dict(entries or {})

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, key: str) -> bool:
        return key in self.entries

    def record(self, key: str, entry: dict) -> None:
        self.entries[key] = entry

    def lookup(self, key: str) -> dict | None:
        return self.entries.get(key)

    def to_json(self) -> str:
        payload = {"version": self.VERSION, "entries": self.entries}
        return json.dumps(payload, sort_keys=True, indent=2) + "\n"

    def save(self, path: "str | Path") -> Path:
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(self.to_json())
        return path

    @classmethod
    def load(cls, path: "str | Path") -> "AutotuneTable":
        """Load a saved table; a missing file yields an empty table."""
        path = Path(path)
        if not path.exists():
            return cls()
        try:
            payload = json.loads(path.read_text())
        except json.JSONDecodeError as exc:
            raise PlanError(
                f"malformed autotune table {path}: {exc}"
            ) from None
        entries = payload.get("entries")
        if not isinstance(entries, dict):
            raise PlanError(
                f"malformed autotune table {path}: no 'entries' mapping"
            )
        return cls(entries)


#: Process-wide default table consulted by ``plan="autotuned"``.
#: ``None`` means "not loaded yet"; loaded lazily from
#: :data:`DEFAULT_TABLE_PATH` (or ``$REPRO_AUTOTUNE_TABLE``) on first
#: use so importing the ops layer never touches the filesystem.
_DEFAULT_TABLE: AutotuneTable | None = None


def default_table() -> AutotuneTable:
    """The lazily-loaded process-wide table (empty when none exists)."""
    global _DEFAULT_TABLE
    if _DEFAULT_TABLE is None:
        path = os.environ.get("REPRO_AUTOTUNE_TABLE")
        _DEFAULT_TABLE = AutotuneTable.load(
            Path(path) if path else DEFAULT_TABLE_PATH
        )
    return _DEFAULT_TABLE


def set_default_table(
    table: "AutotuneTable | str | Path | None",
) -> None:
    """Install (or, with ``None``, reset for lazy re-load) the table
    ``plan="autotuned"`` consults.  Paths are loaded immediately."""
    global _DEFAULT_TABLE
    if table is None or isinstance(table, AutotuneTable):
        _DEFAULT_TABLE = table
    else:
        _DEFAULT_TABLE = AutotuneTable.load(table)


def tuned_plan(
    kind: str,
    impl: "PoolingImpl",
    spec: "PoolSpec",
    dtype: DType,
    n: int,
    c1: int,
    ih: int,
    iw: int,
    config: ChipConfig,
    execute: str = "numeric",
    serialize_slices: bool = False,
    table: AutotuneTable | None = None,
) -> ExecutionPlan | None:
    """The table's best plan for this workload, or ``None`` on a miss.

    The returned plan carries the *caller's* execute mode (the table
    canonically stores ``execute="numeric"``).  Misses mean "fall back
    to the default plan" -- ``plan="autotuned"`` is always safe to
    pass, tuned or not.
    """
    if table is None:
        table = default_table()
    workload = Workload.of_impl(
        kind, impl, spec, dtype, n, c1, ih, iw,
        serialize_slices=serialize_slices,
    )
    entry = table.lookup(workload.key(config))
    if entry is None:
        return None
    plan = ExecutionPlan.from_dict(entry["plan"])
    return replace(plan, execute=execute)


def grid_workloads(
    grid: Sequence[tuple[int, int, int, int, "PoolSpec"]],
    dtype: DType | None = None,
) -> list[Workload]:
    """The benchmark workload set of a validation-style geometry grid.

    Each ``(h, w, c, n, spec)`` entry (the shape of
    :data:`repro.validate.DEFAULT_GRID`) yields two workloads: forward
    MaxPool requested as ``standard`` (where the searcher's variant
    choice can win the paper's Im2col-sized margins) and MaxPool
    backward with ``col2im`` (where only the timing model may move).
    """
    from ..dtypes import FLOAT16

    dtype = dtype or FLOAT16
    out: list[Workload] = []
    for h, w, c, n, spec in grid:
        c1 = -(-c // dtype.c0)
        common = dict(
            dtype=dtype.name, spec=spec, n=n, c1=c1, ih=h, iw=w,
        )
        out.append(
            Workload(
                kind="fwd", op="max", impl="standard", with_mask=False,
                **common,
            )
        )
        out.append(
            Workload(
                kind="bwd", op="max", impl="col2im", with_mask=False,
                **common,
            )
        )
    return out


def autotune_grid(
    workloads: Sequence[Workload],
    config: ChipConfig,
    models: Sequence[str] = ("serial", "pipelined"),
    chunks: str = "exhaustive",
    table: AutotuneTable | None = None,
) -> tuple[AutotuneTable, list[dict]]:
    """Search every workload, record winners, and summarize the gains.

    Returns the (updated) table plus one benchmark row per workload --
    the payload ``repro.bench --autotune`` exports as
    ``BENCH_autotune.json``.
    """
    if table is None:
        table = AutotuneTable()
    rows: list[dict] = []
    cache = ProgramCache(maxsize=4096)
    for workload in workloads:
        result = search(
            workload, config, models=models, chunks=chunks, cache=cache
        )
        table.record(workload.key(config), result.to_entry())
        rows.append(
            {
                "workload": workload.key(config),
                "kind": workload.kind,
                "op": workload.op,
                "requested_impl": workload.impl,
                "best_impl": result.best.impl,
                "baseline_chunk": result.baseline.chunk,
                "best_chunk": result.best.chunk,
                "best_model": result.best.model,
                "baseline_cycles": int(result.baseline_cycles),
                "best_cycles": int(result.best_cycles),
                "cycles_won": result.cycles_won,
                "evaluated": result.evaluated,
            }
        )
    return table, rows


def summarize_rows(rows: Sequence[dict]) -> dict:
    """Aggregate bench rows into the headline cycles-won statistics."""
    ratios = [row["cycles_won"] for row in rows]
    return {
        "workloads": len(rows),
        "median_cycles_won": statistics.median(ratios) if ratios else 0.0,
        "best_cycles_won": max(ratios) if ratios else 0.0,
        "mean_cycles_won": (
            statistics.fmean(ratios) if ratios else 0.0
        ),
    }
