"""The 128-bit vector mask register.

"It uses a 128-bit mask register in which every bit represents one
element of a vector instruction that may be processed or not"
(Section III-A).  For float16 the 128 bits cover 8 blocks of 16 lanes;
a standard-TVM pooling kernel typically sets only the low 16 bits
(one ``C0`` group), which is the inefficiency the paper attacks.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from ..dtypes import VECTOR_MASK_BITS, DType
from ..errors import MaskError


@dataclass(frozen=True)
class Mask:
    """An immutable vector mask.

    ``bits`` is the raw 128-bit value; bit *i* enables lane *i* of the
    repeat body (lane = block * lanes_per_block + offset for fp16).
    """

    bits: int

    def __post_init__(self) -> None:
        if not isinstance(self.bits, int):
            raise MaskError(f"mask bits must be an int, got {type(self.bits)}")
        if self.bits <= 0:
            raise MaskError("mask must enable at least one lane")
        if self.bits >> VECTOR_MASK_BITS:
            raise MaskError(
                f"mask wider than {VECTOR_MASK_BITS} bits: {self.bits:#x}"
            )

    @classmethod
    def full(cls) -> "Mask":
        """All 128 lanes enabled -- the saturated case the paper targets."""
        return cls((1 << VECTOR_MASK_BITS) - 1)

    @classmethod
    def first(cls, lanes: int) -> "Mask":
        """Enable the first ``lanes`` lanes (e.g. ``first(16)`` = one C0)."""
        if not 0 < lanes <= VECTOR_MASK_BITS:
            raise MaskError(f"lane count {lanes} out of range 1..128")
        return cls((1 << lanes) - 1)

    @classmethod
    def for_elements(cls, count: int, dtype: DType) -> "Mask":
        """Mask covering ``count`` elements of ``dtype`` in one repeat."""
        if not 0 < count <= dtype.lanes_per_repeat:
            raise MaskError(
                f"{count} elements of {dtype.name} do not fit one repeat "
                f"({dtype.lanes_per_repeat} lanes)"
            )
        return cls(_element_bits_cached(count, dtype.lanes_per_repeat))

    @property
    def popcount(self) -> int:
        """Number of enabled lanes."""
        return self.bits.bit_count()

    def lanes(self, dtype: DType) -> np.ndarray:
        """Indices of enabled element lanes for ``dtype`` within a repeat."""
        return _lanes_cached(self.bits, dtype.lanes_per_repeat)

    def utilization(self, dtype: DType) -> float:
        """Fraction of the datapath this mask keeps busy (0..1]."""
        return len(self.lanes(dtype)) / dtype.lanes_per_repeat

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Mask({self.popcount}/{VECTOR_MASK_BITS} lanes)"


@lru_cache(maxsize=256)
def _element_bits_cached(count: int, lanes_per_repeat: int) -> int:
    """Mask bits enabling the first ``count`` element lanes.

    For fp32 each lane spans 2 mask bits; the simulator only needs
    lane-granular masks, so positions are scaled to bits.
    """
    scale = VECTOR_MASK_BITS // lanes_per_repeat
    bits = 0
    for lane in range(count):
        bits |= 1 << (lane * scale)
    return bits


@lru_cache(maxsize=512)
def _lanes_cached(bits: int, lanes_per_repeat: int) -> np.ndarray:
    """Enabled lane positions for a mask value; cached because kernels
    reuse a handful of mask patterns across thousands of instructions."""
    scale = VECTOR_MASK_BITS // lanes_per_repeat
    positions = [
        i // scale
        for i in range(VECTOR_MASK_BITS)
        if bits >> i & 1 and i % scale == 0
    ]
    arr = np.asarray(positions, dtype=np.int64)
    arr.setflags(write=False)
    return arr
