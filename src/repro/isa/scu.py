"""Storage Conversion Unit instructions: DMA moves, Im2Col and Col2Im.

Section III-C/III-D of the paper.  ``Im2ColLoad`` is a *load* that
rearranges data while it travels between buffers (L1 -> L0A/L0B/UB), so
the im2col memory blow-up only ever exists in the target buffer.
``Col2ImStore`` is its backward dual: it reads fractals, adds them onto
the (zero-initialised) ``HWC0`` image in the Unified Buffer, summing the
overlapped positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..config import CostModel
from ..dtypes import FRACTAL_ROWS, DType
from ..errors import IsaError, LayoutError
from ..fractal.im2col import output_hw
from .instruction import Instruction, check_repeat
from .operand import MemRef


@dataclass(frozen=True)
class Im2ColParams:
    """The per-image constant parameters of Im2Col/Col2Im (Section III-C).

    These are shared by every instruction loading the same input: image
    extents, zero padding, strides and kernel extents.
    """

    ih: int
    iw: int
    kh: int
    kw: int
    sh: int
    sw: int
    pt: int = 0
    pb: int = 0
    pl: int = 0
    pr: int = 0

    def __post_init__(self) -> None:
        if min(self.ih, self.iw, self.kh, self.kw, self.sh, self.sw) <= 0:
            raise LayoutError("image/kernel/stride extents must be positive")
        if min(self.pt, self.pb, self.pl, self.pr) < 0:
            raise LayoutError("padding must be non-negative")
        # Trigger Equation-1 validation early.
        self.out_hw()

    def out_hw(self) -> tuple[int, int]:
        """Patch-grid extents (Equation 1)."""
        return output_hw(
            self.ih, self.iw, self.kh, self.kw, self.sh, self.sw,
            self.pt, self.pb, self.pl, self.pr,
        )

    @property
    def num_patches(self) -> int:
        oh, ow = self.out_hw()
        return oh * ow

    @property
    def fractals_per_plane(self) -> int:
        """Fractals needed to hold one (xk, yk) plane of all patches."""
        return -(-self.num_patches // FRACTAL_ROWS)

    def plane_rows(self) -> int:
        """Patch rows per plane padded up to whole fractals."""
        return self.fractals_per_plane * FRACTAL_ROWS

    def patch_origin(self, patch: int) -> tuple[int, int]:
        """Top-left image coordinate (may be negative into the padding)
        of row-major patch number ``patch``."""
        oh, ow = self.out_hw()
        if not 0 <= patch < oh * ow:
            raise IsaError(f"patch index {patch} outside grid {oh}x{ow}")
        return (patch // ow) * self.sh - self.pt, (patch % ow) * self.sw - self.pl


def _plane_indices(
    params: Im2ColParams,
    dtype: DType,
    c1: int,
    c1_extent: int,
    xk: int,
    yk: int,
    patch_start: int,
    rows: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Flat source indices plus validity mask for ``rows`` patch rows.

    Returns ``(indices, valid)`` where ``indices`` has shape
    ``(rows, C0)`` into an ``(c1_extent, Ih, Iw, C0)`` region and
    ``valid`` has shape ``(rows,)``.  Invalid rows are padding (either a
    patch beyond the grid in the final fractal, or an element whose
    (h, w) falls in the zero-padding halo); their indices are clamped
    to 0 and must be overwritten with the pad value by the caller.
    """
    if not 0 <= c1 < c1_extent:
        raise IsaError(f"c1={c1} outside region extent {c1_extent}")
    if not (0 <= xk < params.kh and 0 <= yk < params.kw):
        raise IsaError(f"kernel offset ({xk}, {yk}) outside kernel")
    oh, ow = params.out_hw()
    p = patch_start + np.arange(rows, dtype=np.int64)
    in_grid = p < oh * ow
    pc = np.minimum(p, oh * ow - 1)
    h = (pc // ow) * params.sh - params.pt + xk
    w = (pc % ow) * params.sw - params.pl + yk
    in_image = (h >= 0) & (h < params.ih) & (w >= 0) & (w < params.iw)
    valid = in_grid & in_image
    h = np.where(valid, h, 0)
    w = np.where(valid, w, 0)
    c0 = dtype.c0
    base = ((c1 * params.ih + h) * params.iw + w) * c0
    idx = base[:, None] + np.arange(c0, dtype=np.int64)[None, :]
    return idx, valid


@dataclass(frozen=True)
class Im2ColLoad(Instruction):
    """The Im2Col load instruction (Section III-C).

    One repeat iteration gathers 16 consecutive patches -- the elements
    at kernel-relative position ``(xk, yk)`` of each, in channel group
    ``c1`` -- and deposits them as one 16 x C0 fractal at the
    destination.  Padding positions yield ``pad_value`` (zero for
    convolution; the dtype minimum for MaxPool).

    ``repeat_mode`` selects which positional parameter the hardware
    advances between repeats (Section III-C):

    * mode 0 -- iterate ``[c1, (xk, yk)]``, patches fixed;
    * mode 1 -- iterate the patch window ``(x, y)`` by 16 patches,
      ``(c1, xk, yk)`` fixed.  With the loop order ``[c1, (xk, yk),
      (x, y)]`` this stores planes of shape ``(Oh*Ow padded, C0)`` one
      after another -- the ``(C1, Kh, Kw, Oh, Ow, C0)`` tensor used by
      the accelerated pooling.
    """

    src: MemRef
    dst: MemRef
    params: Im2ColParams
    c1: int
    xk: int
    yk: int
    first_patch: int = 0
    repeat: int = 1
    repeat_mode: int = 1
    pad_value: float = 0.0

    unit: ClassVar[str] = "scu"

    def __post_init__(self) -> None:
        check_repeat(self.repeat)
        if self.repeat_mode not in (0, 1):
            raise IsaError(f"repeat mode must be 0 or 1, got {self.repeat_mode}")
        if self.src.dtype.name != self.dst.dtype.name:
            raise IsaError("Im2Col src/dst dtypes differ")
        plane = self.params.ih * self.params.iw * self.src.dtype.c0
        if self.src.size % plane != 0:
            raise IsaError(
                f"Im2Col source region ({self.src.size} elems) is not a "
                f"multiple of the (Ih, Iw, C0) plane ({plane} elems)"
            )
        if self.first_patch % FRACTAL_ROWS != 0:
            raise IsaError("first_patch must be fractal-aligned (multiple of 16)")
        fractal = FRACTAL_ROWS * self.src.dtype.c0
        if self.dst.size < self.repeat * fractal:
            raise IsaError(
                f"Im2Col destination region too small: {self.dst.size} < "
                f"{self.repeat * fractal} elements"
            )

    @property
    def opcode(self) -> str:
        return "im2col"

    def cycles(self, cost: CostModel) -> int:
        return cost.issue_cycles + self.repeat * cost.im2col_fractal_cycles

    def _positions(self) -> list[tuple[int, int, int, int]]:
        """(c1, xk, yk, patch_start) per repeat iteration."""
        dt = self.src.dtype
        c1_extent = self.src.size // (self.params.ih * self.params.iw * dt.c0)
        out = []
        c1, xk, yk, patch = self.c1, self.xk, self.yk, self.first_patch
        for _ in range(self.repeat):
            out.append((c1, xk, yk, patch))
            if self.repeat_mode == 0:
                yk += 1
                if yk == self.params.kw:
                    yk = 0
                    xk += 1
                    if xk == self.params.kh:
                        xk = 0
                        c1 += 1
                        if c1 == c1_extent:
                            c1 = 0  # wraps; real HW would fault
            else:
                patch += FRACTAL_ROWS
        return out

    def execute(self, ctx) -> None:
        dt = self.src.dtype
        src_buf = ctx.view(self.src.buffer)
        dst_buf = ctx.view(self.dst.buffer)
        src_region = src_buf[self.src.offset : self.src.end]
        c1_extent = self.src.size // (self.params.ih * self.params.iw * dt.c0)
        fractal = FRACTAL_ROWS * dt.c0
        for r, (c1, xk, yk, patch) in enumerate(self._positions()):
            idx, valid = _plane_indices(
                self.params, dt, c1, c1_extent, xk, yk, patch, FRACTAL_ROWS
            )
            rows = src_region[idx]
            rows[~valid] = dt.np_dtype.type(self.pad_value)
            start = self.dst.offset + r * fractal
            dst_buf[start : start + fractal] = rows.reshape(-1)

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        dt = self.src.dtype
        c1_extent = self.src.size // (self.params.ih * self.params.iw * dt.c0)
        fractal = FRACTAL_ROWS * dt.c0
        if self.repeat_mode == 1:
            # Repeat r of mode 1 gathers patches ``first + 16r ..``; one
            # call over ``repeat * 16`` rows computes the exact same
            # index/valid sequence as the per-repeat interpreter loop.
            idx, valid = _plane_indices(
                self.params, dt, self.c1, c1_extent, self.xk, self.yk,
                self.first_patch, self.repeat * FRACTAL_ROWS,
            )
        else:
            parts = [
                _plane_indices(
                    self.params, dt, c1, c1_extent, xk, yk, patch,
                    FRACTAL_ROWS,
                )
                for (c1, xk, yk, patch) in self._positions()
            ]
            idx = np.concatenate([p[0] for p in parts], axis=0)
            valid = np.concatenate([p[1] for p in parts], axis=0)
        ctx.emit_im2col(
            self.src,
            self.dst,
            idx + self.src.offset,
            valid,
            dt.np_dtype.type(self.pad_value),
            self.dst.offset,
            self.dst.offset + self.repeat * fractal,
        )


@dataclass(frozen=True)
class Col2ImStore(Instruction):
    """The Col2Im vector instruction (Section III-D).

    Reads ``repeat`` input fractals, loads the matching positions of the
    (already initialised) output image "in an Im2Col manner", adds, and
    scatters the sums back (Figure 6).  Only repeat mode 1 exists: each
    repeat advances the patch window by 16 patches.  Contributions from
    patches beyond the grid or positions inside the padding halo are
    dropped, matching the hardware which never writes the halo.
    """

    src: MemRef
    dst: MemRef
    params: Im2ColParams
    c1: int
    xk: int
    yk: int
    first_patch: int = 0
    repeat: int = 1

    unit: ClassVar[str] = "scu"

    def __post_init__(self) -> None:
        check_repeat(self.repeat)
        if self.src.dtype.name != self.dst.dtype.name:
            raise IsaError("Col2Im src/dst dtypes differ")
        plane = self.params.ih * self.params.iw * self.src.dtype.c0
        if self.dst.size % plane != 0:
            raise IsaError(
                f"Col2Im destination region ({self.dst.size} elems) is not "
                f"a multiple of the (Ih, Iw, C0) plane ({plane} elems)"
            )
        if self.first_patch % FRACTAL_ROWS != 0:
            raise IsaError("first_patch must be fractal-aligned (multiple of 16)")
        fractal = FRACTAL_ROWS * self.src.dtype.c0
        if self.src.size < self.repeat * fractal:
            raise IsaError(
                f"Col2Im source region too small: {self.src.size} < "
                f"{self.repeat * fractal} elements"
            )

    @property
    def opcode(self) -> str:
        return "col2im"

    def rmw_fields(self) -> frozenset[str]:
        # Col2Im *accumulates* onto the destination image, so the
        # destination is read as well as written.
        return frozenset({"dst"})

    def cycles(self, cost: CostModel) -> int:
        return cost.issue_cycles + self.repeat * cost.col2im_fractal_cycles

    def execute(self, ctx) -> None:
        dt = self.src.dtype
        src_buf = ctx.view(self.src.buffer)
        dst_buf = ctx.view(self.dst.buffer)
        dst_region = dst_buf[self.dst.offset : self.dst.end]
        c1_extent = self.dst.size // (self.params.ih * self.params.iw * dt.c0)
        rows_total = self.repeat * FRACTAL_ROWS
        idx, valid = _plane_indices(
            self.params, dt, self.c1, c1_extent, self.xk, self.yk,
            self.first_patch, rows_total,
        )
        fractal_elems = rows_total * dt.c0
        src_rows = src_buf[
            self.src.offset : self.src.offset + fractal_elems
        ].reshape(rows_total, dt.c0)
        idx_v = idx[valid]
        rows_v = src_rows[valid]
        # Distinct patches at a fixed kernel offset can never collide on
        # an input position, so a gather-add-scatter is exact; np.add.at
        # keeps it exact even if a malformed program violates that.
        np.add.at(dst_region, idx_v.reshape(-1), rows_v.reshape(-1))

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        dt = self.src.dtype
        c1_extent = self.dst.size // (self.params.ih * self.params.iw * dt.c0)
        rows_total = self.repeat * FRACTAL_ROWS
        idx, valid = _plane_indices(
            self.params, dt, self.c1, c1_extent, self.xk, self.yk,
            self.first_patch, rows_total,
        )
        src_idx = (
            self.src.offset + np.arange(rows_total * dt.c0, dtype=np.int64)
        ).reshape(rows_total, dt.c0)
        ctx.emit_col2im(
            self.src,
            self.dst,
            src_idx[valid].reshape(-1),
            (idx[valid] + self.dst.offset).reshape(-1),
        )


@dataclass(frozen=True)
class DataMove(Instruction):
    """Plain (layout-preserving) data movement between memories.

    ``channel`` selects the cost path: ``"gm"`` for global-memory <->
    scratch-pad DMA, ``"local"`` for on-chip buffer-to-buffer copies.

    ``accumulate`` makes the transfer add into the destination instead
    of overwriting it -- the atomic-add DMA mode the runtime uses when
    row-chunked backward tiles write overlapping input-gradient rows.
    Tiles of one (N, C1) group are serialised on one core, so the adds
    are race-free.
    """

    src: MemRef
    dst: MemRef
    channel: str = "gm"
    accumulate: bool = False

    unit: ClassVar[str] = "mte"

    def __post_init__(self) -> None:
        if self.channel not in ("gm", "local"):
            raise IsaError(f"unknown DMA channel {self.channel!r}")
        if self.src.size != self.dst.size:
            raise IsaError(
                f"DataMove size mismatch: {self.src.size} != {self.dst.size}"
            )
        if self.src.dtype.name != self.dst.dtype.name:
            raise IsaError("DataMove src/dst dtypes differ")

    @property
    def opcode(self) -> str:
        return "data_move"

    def rmw_fields(self) -> frozenset[str]:
        # Accumulate-mode DMA adds into the destination, reading it.
        return frozenset({"dst"}) if self.accumulate else frozenset()

    def cycles(self, cost: CostModel) -> int:
        bw = (
            cost.dma_bytes_per_cycle
            if self.channel == "gm"
            else cost.local_bytes_per_cycle
        )
        return cost.dma_latency_cycles + -(-self.src.nbytes // bw)

    def execute(self, ctx) -> None:
        src_buf = ctx.view(self.src.buffer)
        dst_buf = ctx.view(self.dst.buffer)
        if self.src.end > src_buf.size or self.dst.end > dst_buf.size:
            raise IsaError("DataMove region escapes buffer")
        if self.accumulate:
            dst_buf[self.dst.offset : self.dst.end] += src_buf[
                self.src.offset : self.src.end
            ]
        else:
            dst_buf[self.dst.offset : self.dst.end] = src_buf[
                self.src.offset : self.src.end
            ]

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        ctx.emit_copy(self.src, self.dst, self.accumulate)
