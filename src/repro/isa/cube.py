"""Cube Unit instruction: fractal matrix multiply-accumulate.

"The Cube Unit ... implements matrix multiplication using an array of
processing elements ... can multiply two data-fractals per clock cycle"
(Section III-A).  Pooling cannot use it (no weights), but convolution --
the instructions' primary client -- can, and :mod:`repro.ops.conv2d`
demonstrates the full Im2Col -> Cube pipeline on it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from ..config import CostModel
from ..dtypes import FRACTAL_ROWS
from ..errors import IsaError
from .instruction import Instruction, check_repeat
from .operand import MemRef


@dataclass(frozen=True)
class Mmad(Instruction):
    """``repeat`` fractal-pair multiply-accumulates.

    Reads 16x16 fp16 fractals from L0A (``a``) and L0B (``b``) and
    accumulates ``a @ b`` into a float32 16x16 tile in L0C (``c``).
    ``init`` clears the accumulator first.  Repeats advance ``a`` and
    ``b`` by one fractal each (a dot product along the reduction axis).
    """

    a: MemRef
    b: MemRef
    c: MemRef
    repeat: int = 1
    init: bool = False

    unit: ClassVar[str] = "cube"
    write_fields: ClassVar[frozenset[str]] = frozenset({"c"})

    def rmw_fields(self) -> frozenset[str]:
        # Without ``init`` the accumulator's prior contents are read.
        return frozenset() if self.init else frozenset({"c"})

    def __post_init__(self) -> None:
        check_repeat(self.repeat)
        fr = FRACTAL_ROWS * FRACTAL_ROWS
        if self.a.size < self.repeat * fr or self.b.size < self.repeat * fr:
            raise IsaError("mmad input regions smaller than repeat fractals")
        if self.c.size < fr:
            raise IsaError("mmad accumulator region smaller than one fractal")

    @property
    def opcode(self) -> str:
        return "mmad"

    def cycles(self, cost: CostModel) -> int:
        return cost.issue_cycles + self.repeat * cost.cube_mmad_cycles

    def execute(self, ctx) -> None:
        fr = FRACTAL_ROWS * FRACTAL_ROWS
        a_buf = ctx.view(self.a.buffer)
        b_buf = ctx.view(self.b.buffer)
        c_buf = ctx.view(self.c.buffer)
        out = c_buf[self.c.offset : self.c.offset + fr].reshape(
            FRACTAL_ROWS, FRACTAL_ROWS
        )
        # The L0C accumulator is float32 in hardware; one instruction's
        # whole repeat chain accumulates at full precision and rounds to
        # the storage dtype only when written back.
        acc = (
            np.zeros((FRACTAL_ROWS, FRACTAL_ROWS), dtype=np.float32)
            if self.init
            else out.astype(np.float32)
        )
        for r in range(self.repeat):
            a = a_buf[
                self.a.offset + r * fr : self.a.offset + (r + 1) * fr
            ].reshape(FRACTAL_ROWS, FRACTAL_ROWS)
            b = b_buf[
                self.b.offset + r * fr : self.b.offset + (r + 1) * fr
            ].reshape(FRACTAL_ROWS, FRACTAL_ROWS)
            acc += a.astype(np.float32) @ b.astype(np.float32)
        out[:] = acc.astype(out.dtype)

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        ctx.emit_mmad(self)
