"""Simulated DaVinci instruction set.

The instructions here are *functional* models: executing one transforms
NumPy data held in the simulated scratch-pad buffers exactly as the
hardware instruction would, and each instruction also reports its cycle
cost under a :class:`repro.config.CostModel`.

Organisation mirrors the paper's Section III:

* :mod:`repro.isa.mask`       -- the 128-bit vector mask register.
* :mod:`repro.isa.operand`    -- memory references with block/repeat strides.
* :mod:`repro.isa.vector`     -- Vector Unit instructions (vmax, vadd, ...).
* :mod:`repro.isa.scu`        -- Storage Conversion Unit: DMA moves and the
  specialized ``Im2Col`` / ``Col2Im`` instructions.
* :mod:`repro.isa.cube`       -- Cube Unit ``mmad`` on data-fractals.
* :mod:`repro.isa.program`    -- instruction streams.
"""

from .instruction import HW_MAX_REPEAT, Instruction, Region
from .mask import Mask
from .operand import MemRef, VectorOperand
from .program import Program
from .vector import (
    VectorBinary,
    VectorDup,
    VectorScalar,
    VectorCopy,
    VMAX,
    VMIN,
    VADD,
    VSUB,
    VMUL,
    VDIV,
    VCMP_EQ,
    VADDS,
    VMULS,
)
from .scu import DataMove, Im2ColParams, Im2ColLoad, Col2ImStore
from .cube import Mmad

__all__ = [
    "Mask",
    "Instruction",
    "HW_MAX_REPEAT",
    "Region",
    "MemRef",
    "VectorOperand",
    "Program",
    "VectorBinary",
    "VectorDup",
    "VectorScalar",
    "VectorCopy",
    "VMAX",
    "VMIN",
    "VADD",
    "VSUB",
    "VMUL",
    "VDIV",
    "VCMP_EQ",
    "VADDS",
    "VMULS",
    "DataMove",
    "Im2ColParams",
    "Im2ColLoad",
    "Col2ImStore",
    "Mmad",
]
