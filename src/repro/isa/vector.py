"""Vector Unit instructions.

"The Vector Unit performs basic arithmetic and logic vector operations
(e.g., subtracting two vectors). It uses a 128-bit mask register ..."
(Section III-A).  One repeat iteration processes up to 256 bytes (128
fp16 lanes in 8 blocks of 16); the repeat parameter re-issues the body
with the operands advanced by their repeat strides, removing loop and
barrier overhead (Section V).

Cost model: ``issue_cycles + repeat * vector_repeat_cycles`` -- crucially
*independent of the mask*: disabled lanes are wasted datapath, which is
exactly why the 16-of-128-lane standard pooling loses to the saturated
Im2col layout.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, ClassVar

import numpy as np

from ..config import CostModel
from ..errors import IsaError
from .instruction import Instruction, check_bounds, check_repeat
from .mask import Mask
from .operand import VectorOperand


def _np_divide(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    with np.errstate(divide="ignore", invalid="ignore"):
        return a / b


_BINARY_OPS: dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "vmax": np.maximum,
    "vmin": np.minimum,
    "vadd": np.add,
    "vsub": np.subtract,
    "vmul": np.multiply,
    "vdiv": _np_divide,
}


def _cmp_eq(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """vcmp + vsel fused: 1.0 where equal, else 0.0 (storage dtype)."""
    return (a == b).astype(a.dtype)


_BINARY_OPS["vcmp_eq"] = _cmp_eq

_SCALAR_OPS: dict[str, Callable[[np.ndarray, float], np.ndarray]] = {
    "vadds": lambda a, s: a + a.dtype.type(s),
    "vmuls": lambda a, s: a * a.dtype.type(s),
}


@dataclass(frozen=True)
class VectorBinary(Instruction):
    """A two-source vector instruction (vmax, vadd, vmul, ...).

    Executes ``dst[i] = op(src0[i], src1[i])`` over the enabled mask
    lanes, ``repeat`` times, advancing each operand by its repeat stride.
    Repeats are sequential: with ``dst.rep_stride == 0`` and
    ``src0 is dst`` the instruction accumulates, which is how a single
    ``vmax`` reduces across a patch row (Section V-A).
    """

    op: str
    dst: VectorOperand
    src0: VectorOperand
    src1: VectorOperand
    mask: Mask
    repeat: int = 1

    unit: ClassVar[str] = "vector"

    def __post_init__(self) -> None:
        if self.op not in _BINARY_OPS:
            raise IsaError(f"unknown vector binary op {self.op!r}")
        check_repeat(self.repeat)
        if self.op == "vcmp_eq" and self.repeat != 1:
            # vcmp writes the single 128-bit CMPMASK register that the
            # fused select consumes; a repeat would overwrite it before
            # the select reads it, so compare instructions cannot repeat.
            raise IsaError("vcmp_eq cannot use the repeat parameter")
        dts = {o.ref.dtype.name for o in (self.dst, self.src0, self.src1)}
        if len(dts) != 1:
            raise IsaError(f"operand dtypes differ: {sorted(dts)}")

    @property
    def opcode(self) -> str:
        return self.op

    def cycles(self, cost: CostModel) -> int:
        return cost.issue_cycles + self.repeat * cost.vector_repeat_cycles

    def lane_utilization(self) -> float:
        return self.mask.utilization(self.dst.ref.dtype)

    def execute(self, ctx) -> None:
        dt = self.dst.ref.dtype
        lanes = self.mask.lanes(dt)
        func = _BINARY_OPS[self.op]
        d_idx = self.dst.element_indices(self.repeat, lanes)
        s0_idx = self.src0.element_indices(self.repeat, lanes)
        s1_idx = self.src1.element_indices(self.repeat, lanes)

        d_buf = ctx.view(self.dst.ref.buffer)
        s0_buf = ctx.view(self.src0.ref.buffer)
        s1_buf = ctx.view(self.src1.ref.buffer)
        check_bounds(d_idx, d_buf.size, f"{self.op} dst")
        check_bounds(s0_idx, s0_buf.size, f"{self.op} src0")
        check_bounds(s1_idx, s1_buf.size, f"{self.op} src1")

        # Fast path: destinations of different repeats never alias, so
        # the whole instruction is one gather/compute/scatter.
        if self.repeat == 1 or (
            self.dst.rep_stride > 0
            and len(np.unique(d_idx)) == d_idx.size
        ):
            d_buf[d_idx] = func(s0_buf[s0_idx], s1_buf[s1_idx])
            return
        # Sequential-repeat path (e.g. accumulating reductions with
        # dst.rep_stride == 0): later repeats observe earlier writes.
        for r in range(self.repeat):
            d_buf[d_idx[r]] = func(s0_buf[s0_idx[r]], s1_buf[s1_idx[r]])

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        dt = self.dst.ref.dtype
        lanes = self.mask.lanes(dt)
        func = _BINARY_OPS[self.op]
        d_idx = self.dst.element_indices(self.repeat, lanes)
        s0_idx = self.src0.element_indices(self.repeat, lanes)
        s1_idx = self.src1.element_indices(self.repeat, lanes)
        # Accumulating reduction (``dst is src0`` re-addressed every
        # repeat): max/min are order-independent and rounding-free, so
        # the whole chain collapses to one ``ufunc.reduce`` over the
        # gathered source rows -- bit-identical to the sequential loop.
        if (
            self.repeat > 1
            and self.op in ("vmax", "vmin")
            and self.dst.rep_stride == 0
            and self.src0 == self.dst
            and len(np.unique(d_idx[0])) == d_idx[0].size
            and not (
                self.src1.ref.buffer == self.dst.ref.buffer
                and np.intersect1d(d_idx[0], s1_idx).size
            )
        ):
            ctx.emit_reduction(
                self.op, func, self.dst.ref, d_idx[0], self.src1.ref, s1_idx
            )
            return
        if self.repeat == 1 or (
            self.dst.rep_stride > 0
            and len(np.unique(d_idx)) == d_idx.size
        ):
            ctx.emit_elementwise(
                ("vbin", self.op),
                func,
                self.dst.ref,
                d_idx.reshape(-1),
                [
                    (self.src0.ref, s0_idx.reshape(-1)),
                    (self.src1.ref, s1_idx.reshape(-1)),
                ],
            )
            return
        ctx.emit_sequential(
            func,
            self.dst.ref,
            d_idx,
            [(self.src0.ref, s0_idx), (self.src1.ref, s1_idx)],
        )


def VMAX(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Element-wise maximum -- the MaxPool reduction instruction."""
    return VectorBinary("vmax", dst, src0, src1, mask, repeat)


def VMIN(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Element-wise minimum."""
    return VectorBinary("vmin", dst, src0, src1, mask, repeat)


def VADD(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Element-wise addition -- AvgPool reduction / backward merge step."""
    return VectorBinary("vadd", dst, src0, src1, mask, repeat)


def VSUB(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Element-wise subtraction -- the argmax found-chain's diff step."""
    return VectorBinary("vsub", dst, src0, src1, mask, repeat)


def VMUL(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Element-wise multiply -- the argmax-mask x gradient step."""
    return VectorBinary("vmul", dst, src0, src1, mask, repeat)


def VDIV(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Element-wise division."""
    return VectorBinary("vdiv", dst, src0, src1, mask, repeat)


def VCMP_EQ(dst, src0, src1, mask, repeat=1) -> VectorBinary:
    """Fused compare-equal + select(1, 0): builds the argmax mask."""
    return VectorBinary("vcmp_eq", dst, src0, src1, mask, repeat)


@dataclass(frozen=True)
class VectorScalar(Instruction):
    """Vector-with-immediate instruction (vadds, vmuls)."""

    op: str
    dst: VectorOperand
    src: VectorOperand
    imm: float
    mask: Mask
    repeat: int = 1

    unit: ClassVar[str] = "vector"

    def __post_init__(self) -> None:
        if self.op not in _SCALAR_OPS:
            raise IsaError(f"unknown vector scalar op {self.op!r}")
        check_repeat(self.repeat)
        if self.dst.ref.dtype.name != self.src.ref.dtype.name:
            raise IsaError("vector scalar operand dtypes differ")

    @property
    def opcode(self) -> str:
        return self.op

    def cycles(self, cost: CostModel) -> int:
        return cost.issue_cycles + self.repeat * cost.vector_repeat_cycles

    def lane_utilization(self) -> float:
        return self.mask.utilization(self.dst.ref.dtype)

    def execute(self, ctx) -> None:
        dt = self.dst.ref.dtype
        lanes = self.mask.lanes(dt)
        func = _SCALAR_OPS[self.op]
        d_idx = self.dst.element_indices(self.repeat, lanes)
        s_idx = self.src.element_indices(self.repeat, lanes)
        d_buf = ctx.view(self.dst.ref.buffer)
        s_buf = ctx.view(self.src.ref.buffer)
        check_bounds(d_idx, d_buf.size, f"{self.op} dst")
        check_bounds(s_idx, s_buf.size, f"{self.op} src")
        if self.repeat == 1 or (
            self.dst.rep_stride > 0
            and len(np.unique(d_idx)) == d_idx.size
        ):
            d_buf[d_idx] = func(s_buf[s_idx], self.imm)
            return
        for r in range(self.repeat):
            d_buf[d_idx[r]] = func(s_buf[s_idx[r]], self.imm)

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        dt = self.dst.ref.dtype
        lanes = self.mask.lanes(dt)
        base = _SCALAR_OPS[self.op]
        imm = self.imm

        def func(a: np.ndarray) -> np.ndarray:
            return base(a, imm)

        d_idx = self.dst.element_indices(self.repeat, lanes)
        s_idx = self.src.element_indices(self.repeat, lanes)
        if self.repeat == 1 or (
            self.dst.rep_stride > 0
            and len(np.unique(d_idx)) == d_idx.size
        ):
            ctx.emit_elementwise(
                ("vs", self.op, float(imm)),
                func,
                self.dst.ref,
                d_idx.reshape(-1),
                [(self.src.ref, s_idx.reshape(-1))],
            )
            return
        ctx.emit_sequential(
            func, self.dst.ref, d_idx, [(self.src.ref, s_idx)]
        )


def VADDS(dst, src, imm, mask, repeat=1) -> VectorScalar:
    """Vector plus immediate (also AKG's canonical move when imm=0)."""
    return VectorScalar("vadds", dst, src, imm, mask, repeat)


def VMULS(dst, src, imm, mask, repeat=1) -> VectorScalar:
    """Vector times immediate -- AvgPool's 1/(Kh*Kw) division step."""
    return VectorScalar("vmuls", dst, src, imm, mask, repeat)


def VectorCopy(dst, src, mask, repeat=1) -> VectorScalar:
    """Strided copy, modelled as ``vadds 0`` exactly as AKG lowers moves.

    The expansion-based pooling variant (Section VI-B) uses these to
    build the Im2col layout with regular vector instructions.
    """
    return VectorScalar("vadds", dst, src, 0.0, mask, repeat)


@dataclass(frozen=True)
class VectorDup(Instruction):
    """Broadcast an immediate into a vector region (``vector_dup``).

    Used to seed MaxPool outputs with the dtype minimum and Col2Im
    outputs with zero (Sections V-A, III-D).
    """

    dst: VectorOperand
    imm: float
    mask: Mask
    repeat: int = 1

    unit: ClassVar[str] = "vector"

    def __post_init__(self) -> None:
        check_repeat(self.repeat)

    @property
    def opcode(self) -> str:
        return "vector_dup"

    def cycles(self, cost: CostModel) -> int:
        return cost.issue_cycles + self.repeat * cost.vector_repeat_cycles

    def lane_utilization(self) -> float:
        return self.mask.utilization(self.dst.ref.dtype)

    def execute(self, ctx) -> None:
        dt = self.dst.ref.dtype
        lanes = self.mask.lanes(dt)
        d_idx = self.dst.element_indices(self.repeat, lanes)
        d_buf = ctx.view(self.dst.ref.buffer)
        check_bounds(d_idx, d_buf.size, "vector_dup dst")
        d_buf[d_idx] = dt.np_dtype.type(self.imm)

    def supports_compile(self) -> bool:
        return True

    def compile(self, ctx) -> None:
        dt = self.dst.ref.dtype
        lanes = self.mask.lanes(dt)
        d_idx = self.dst.element_indices(self.repeat, lanes)
        # Scatter order inside one fill is irrelevant (every lane gets
        # the same immediate), so duplicate destination indices are fine
        # and adjacent dups with the same value fuse unconditionally.
        ctx.emit_fill(
            self.dst.ref,
            d_idx.reshape(-1),
            dt.np_dtype.type(self.imm),
        )
