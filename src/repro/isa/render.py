"""Render instruction streams as CCE-C-like pseudo-code.

The paper argues through lowered code: "Lowered CCE C code is used to
highlight the above-mentioned factors in each implementation"
(Section V).  This module prints a :class:`~repro.isa.program.Program`
the same way, so the factors -- mask width, repeat counts, issue counts
-- can be read straight off our kernels too.

Two views:

* :func:`render_program` -- one line per instruction, CCE-intrinsic
  style;
* :func:`summarize_program` -- collapses runs of same-shaped
  instructions into annotated loops, which is how a short listing can
  describe a 4 000-instruction kernel.
"""

from __future__ import annotations

from dataclasses import dataclass

from .instruction import Instruction
from .program import Program
from .scu import Col2ImStore, DataMove, Im2ColLoad
from .cube import Mmad
from .vector import VectorBinary, VectorDup, VectorScalar


def _mem(ref) -> str:
    return f"{ref.buffer}[{ref.offset}:{ref.end}]"


def _vop(op) -> str:
    extras = []
    if op.blk_stride != 1:
        extras.append(f"blk={op.blk_stride}")
    if op.rep_stride != 8:
        extras.append(f"rep={op.rep_stride}")
    suffix = f" ({', '.join(extras)})" if extras else ""
    return _mem(op.ref) + suffix


def render_instruction(instr: Instruction) -> str:
    """One CCE-like line for one instruction."""
    if isinstance(instr, VectorBinary):
        return (
            f"{instr.op}(mask={instr.mask.popcount}/128, "
            f"repeat={instr.repeat}, dst={_vop(instr.dst)}, "
            f"src0={_vop(instr.src0)}, src1={_vop(instr.src1)})"
        )
    if isinstance(instr, VectorScalar):
        return (
            f"{instr.op}(mask={instr.mask.popcount}/128, "
            f"repeat={instr.repeat}, dst={_vop(instr.dst)}, "
            f"src={_vop(instr.src)}, imm={instr.imm:g})"
        )
    if isinstance(instr, VectorDup):
        return (
            f"vector_dup(mask={instr.mask.popcount}/128, "
            f"repeat={instr.repeat}, dst={_vop(instr.dst)}, "
            f"imm={instr.imm:g})"
        )
    if isinstance(instr, Im2ColLoad):
        return (
            f"img2col(src={_mem(instr.src)}, dst={_mem(instr.dst)}, "
            f"c1={instr.c1}, xk={instr.xk}, yk={instr.yk}, "
            f"patch={instr.first_patch}, repeat={instr.repeat}, "
            f"mode={instr.repeat_mode})"
        )
    if isinstance(instr, Col2ImStore):
        return (
            f"col2img(src={_mem(instr.src)}, dst={_mem(instr.dst)}, "
            f"xk={instr.xk}, yk={instr.yk}, patch={instr.first_patch}, "
            f"repeat={instr.repeat})"
        )
    if isinstance(instr, DataMove):
        mode = "+=" if instr.accumulate else "="
        return (
            f"copy_{instr.channel}({_mem(instr.dst)} {mode} "
            f"{_mem(instr.src)})"
        )
    if isinstance(instr, Mmad):
        return (
            f"mmad(c={_mem(instr.c)}, a={_mem(instr.a)}, "
            f"b={_mem(instr.b)}, repeat={instr.repeat}, "
            f"init={int(instr.init)})"
        )
    return instr.opcode  # pragma: no cover - future instruction kinds


def render_program(program: Program, limit: int | None = None) -> str:
    """One line per instruction (optionally the first ``limit``)."""
    instrs = program.instructions
    lines = [f"// kernel {program.name}: {len(instrs)} instructions"]
    shown = instrs if limit is None else instrs[:limit]
    lines += ["  " + render_instruction(i) for i in shown]
    if limit is not None and len(instrs) > limit:
        lines.append(f"  // ... {len(instrs) - limit} more")
    return "\n".join(lines)


@dataclass(frozen=True)
class _RunKey:
    """Shape of an instruction for run-collapsing: opcode + mask +
    repeat, ignoring addresses."""

    opcode: str
    mask: int | None
    repeat: int

    @classmethod
    def of(cls, instr: Instruction) -> "_RunKey":
        mask = getattr(instr, "mask", None)
        return cls(
            opcode=instr.opcode,
            mask=mask.popcount if mask is not None else None,
            repeat=getattr(instr, "repeat", 1),
        )


def summarize_program(program: Program) -> str:
    """Collapse runs of same-shaped instructions into loop annotations.

    The standard MaxPool renders as one line --
    ``vmax(mask=16/128, repeat=3) x4900 issues`` -- which is literally
    the paper's Section V-A sentence about it.
    """
    lines = [f"// kernel {program.name}"]
    instrs = program.instructions
    i = 0
    while i < len(instrs):
        key = _RunKey.of(instrs[i])
        j = i
        while j < len(instrs) and _RunKey.of(instrs[j]) == key:
            j += 1
        count = j - i
        mask = f"mask={key.mask}/128, " if key.mask is not None else ""
        line = f"  {key.opcode}({mask}repeat={key.repeat})"
        if count > 1:
            line += f"  x{count} issues"
        lines.append(line)
        i = j
    if program.scalar_loop_trips:
        lines.append(f"  // scalar loop trips: {program.scalar_loop_trips}")
    return "\n".join(lines)
