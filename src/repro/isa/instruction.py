"""Base machinery shared by all simulated instructions."""

from __future__ import annotations

import dataclasses
from typing import Mapping, Protocol

import numpy as np

from ..config import CostModel
from ..errors import IsaError, RepeatError
from .operand import MemRef, VectorOperand

#: Hardware limit of the repeat field; builders split longer loops into
#: multiple instructions (Sections III-C/III-D mention the repetition
#: parameter; the 8-bit encoding caps it at 255).
HW_MAX_REPEAT = 255


class ExecutionContext(Protocol):
    """What an instruction needs from the simulator to execute.

    Implemented by :class:`repro.sim.aicore.AICore`.
    """

    def view(self, buffer: str) -> np.ndarray:
        """Flat, writable NumPy view of a buffer's contents."""
        ...


class Instruction:
    """Base class: every instruction executes data and reports cycles."""

    #: Which functional unit issues this instruction ("vector", "scu",
    #: "mte", "cube", "scalar").
    unit: str = "none"

    @property
    def opcode(self) -> str:
        return type(self).__name__.lower()

    def cycles(self, cost: CostModel) -> int:
        """Cycle cost under ``cost``; pure, does not need buffer data."""
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> None:
        """Apply the instruction's effect to the simulated buffers."""
        raise NotImplementedError

    def lane_utilization(self) -> float | None:
        """Datapath-fraction kept busy, or ``None`` for non-vector units."""
        return None

    # -- relocation -----------------------------------------------------
    #
    # Concrete instructions are frozen dataclasses whose only mutable
    # state is *where* their operands point.  Relocation produces a copy
    # with the global-memory operands rebased, enabling one lowered tile
    # program to be cheaply re-targeted at every (N, C1) slice of a
    # workload (see ``repro.sim.progcache``).

    def buffers(self) -> frozenset[str]:
        """Names of every buffer this instruction's operands touch."""
        out: set[str] = set()
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if isinstance(v, MemRef):
                out.add(v.buffer)
            elif isinstance(v, VectorOperand):
                out.add(v.ref.buffer)
        return frozenset(out)

    def relocate(self, deltas: Mapping[str, int]) -> "Instruction":
        """Copy with operands rebased per ``deltas`` (buffer -> elems).

        Returns ``self`` unchanged when no operand lives in a rebased
        buffer, so relocation shares untouched (frozen, immutable)
        instructions between programs.  Validation re-runs on the copy,
        guaranteeing a relocated instruction is as well-formed as a
        freshly lowered one.
        """
        changes: dict[str, object] = {}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if isinstance(v, (MemRef, VectorOperand)):
                nv = v.relocate(deltas)
                if nv is not v:
                    changes[f.name] = nv
        if not changes:
            return self
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


def check_repeat(repeat: int) -> None:
    """Validate a repeat field against the hardware encoding."""
    if not isinstance(repeat, (int, np.integer)):
        raise RepeatError(f"repeat must be an int, got {type(repeat)}")
    if not 1 <= repeat <= HW_MAX_REPEAT:
        raise RepeatError(
            f"repeat {repeat} outside hardware range 1..{HW_MAX_REPEAT}"
        )


def check_bounds(indices: np.ndarray, limit: int, what: str) -> None:
    """Verify gathered/scattered element indices stay inside a region."""
    if indices.size == 0:
        raise IsaError(f"{what}: empty index set")
    lo = int(indices.min())
    hi = int(indices.max())
    if lo < 0 or hi >= limit:
        raise IsaError(
            f"{what}: element indices [{lo}, {hi}] escape region of "
            f"size {limit}"
        )
