"""Base machinery shared by all simulated instructions."""

from __future__ import annotations

import dataclasses
from typing import ClassVar, Mapping, Protocol

import numpy as np

from ..config import CostModel
from ..errors import IsaError, RepeatError
from .operand import MemRef, VectorOperand

#: Hardware limit of the repeat field; builders split longer loops into
#: multiple instructions (Sections III-C/III-D mention the repetition
#: parameter; the 8-bit encoding caps it at 255).
HW_MAX_REPEAT = 255


class ExecutionContext(Protocol):
    """What an instruction needs from the simulator to execute.

    Implemented by :class:`repro.sim.aicore.AICore`.
    """

    def view(self, buffer: str) -> np.ndarray:
        """Flat, writable NumPy view of a buffer's contents."""
        ...


@dataclasses.dataclass(frozen=True)
class Region:
    """A half-open element span ``[start, stop)`` of one named buffer.

    The unit of hazard tracking in the pipelined scheduler: two
    instructions conflict exactly when one writes a region overlapping
    a region the other reads or writes.  Spans are conservative
    (strided operands report their full reach), which can only
    serialise, never reorder incorrectly.
    """

    buffer: str
    start: int
    stop: int

    def overlaps(self, other: "Region") -> bool:
        return (
            self.buffer == other.buffer
            and self.start < other.stop
            and other.start < self.stop
        )


class Instruction:
    """Base class: every instruction executes data and reports cycles."""

    #: Which functional unit issues this instruction ("vector", "scu",
    #: "mte", "cube", "scalar").
    unit: str = "none"

    #: Operand field names written by this instruction.  The default
    #: covers the common ``dst`` convention; instructions with different
    #: field names (e.g. ``Mmad``'s accumulator ``c``) override it.
    write_fields: ClassVar[frozenset[str]] = frozenset({"dst"})

    @property
    def opcode(self) -> str:
        return type(self).__name__.lower()

    def cycles(self, cost: CostModel) -> int:
        """Cycle cost under ``cost``; pure, does not need buffer data."""
        raise NotImplementedError

    def execute(self, ctx: ExecutionContext) -> None:
        """Apply the instruction's effect to the simulated buffers."""
        raise NotImplementedError

    def lane_utilization(self) -> float | None:
        """Datapath-fraction kept busy, or ``None`` for non-vector units."""
        return None

    # -- JIT compilation -------------------------------------------------
    #
    # The NumPy JIT (:mod:`repro.sim.compile`) translates a lowered
    # program into a handful of batched array operations.  Instructions
    # opt in by overriding ``supports_compile()`` and ``compile(ctx)``;
    # the default is *interpreter fallback*: a non-compilable
    # instruction still runs (its ``execute()`` is called in program
    # order between the batched steps), it just is not fused, so
    # partially-compilable programs work instead of erroring.

    def supports_compile(self) -> bool:
        """Whether this instruction *type* can be translated by the
        NumPy JIT.  ``compile(ctx)`` may still raise
        :class:`~repro.errors.CompileError` for an individual instance
        (data-dependent inability, e.g. aliased operand regions); the
        compiler then falls back to the interpreter for it."""
        return False

    def compile(self, ctx) -> None:
        """Emit this instruction's data effect into a compile context
        (:class:`repro.sim.compile.CompileContext`) by calling exactly
        one of its ``emit_*`` helpers with precomputed index arrays.

        The emitted step must be **bit-identical** to ``execute()`` for
        every input: the JIT is validated differentially against the
        interpreter (``python -m repro.validate --jit``).  Only called
        when :meth:`supports_compile` returns ``True``.
        """
        raise NotImplementedError(
            f"{self.opcode} does not implement compile(); override "
            "supports_compile()/compile(ctx) to opt into the NumPy JIT"
        )

    # -- relocation -----------------------------------------------------
    #
    # Concrete instructions are frozen dataclasses whose only mutable
    # state is *where* their operands point.  Relocation produces a copy
    # with the global-memory operands rebased, enabling one lowered tile
    # program to be cheaply re-targeted at every (N, C1) slice of a
    # workload (see ``repro.sim.progcache``).

    def buffers(self) -> frozenset[str]:
        """Names of every buffer this instruction's operands touch."""
        out: set[str] = set()
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if isinstance(v, MemRef):
                out.add(v.buffer)
            elif isinstance(v, VectorOperand):
                out.add(v.ref.buffer)
        return frozenset(out)

    # -- region introspection -------------------------------------------
    #
    # ``reads()``/``writes()`` reuse the same dataclass-field walk as
    # ``buffers()``/``relocate()``: any MemRef / VectorOperand field is
    # an operand, classified by ``write_fields`` and ``rmw_fields()``.
    # The pipelined scheduler consumes these to gate cross-unit overlap
    # on read-after-write / write-after-read hazards.

    def rmw_fields(self) -> frozenset[str]:
        """Write fields that also *read* their destination.

        Accumulating instructions (``Col2ImStore``, ``DataMove`` with
        ``accumulate=True``, non-``init`` ``Mmad``) override this so the
        destination counts as a read too, creating the RAW edge that
        orders successive accumulations.
        """
        return frozenset()

    def _operand_region(
        self, value: MemRef | VectorOperand, repeat: int
    ) -> Region:
        if isinstance(value, MemRef):
            return Region(value.buffer, value.offset, value.end)
        start, stop = value.extent(repeat)
        return Region(value.ref.buffer, start, stop)

    def reads(self) -> tuple[Region, ...]:
        """Buffer regions this instruction reads (incl. read-modify-write
        destinations)."""
        repeat = int(getattr(self, "repeat", 1))
        rmw = self.rmw_fields()
        out: list[Region] = []
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if not isinstance(v, (MemRef, VectorOperand)):
                continue
            if f.name in self.write_fields and f.name not in rmw:
                continue
            out.append(self._operand_region(v, repeat))
        return tuple(out)

    def writes(self) -> tuple[Region, ...]:
        """Buffer regions this instruction writes."""
        repeat = int(getattr(self, "repeat", 1))
        out: list[Region] = []
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if not isinstance(v, (MemRef, VectorOperand)):
                continue
            if f.name in self.write_fields:
                out.append(self._operand_region(v, repeat))
        return tuple(out)

    def relocate(self, deltas: Mapping[str, int]) -> "Instruction":
        """Copy with operands rebased per ``deltas`` (buffer -> elems).

        Returns ``self`` unchanged when no operand lives in a rebased
        buffer, so relocation shares untouched (frozen, immutable)
        instructions between programs.  Validation re-runs on the copy,
        guaranteeing a relocated instruction is as well-formed as a
        freshly lowered one.
        """
        changes: dict[str, object] = {}
        for f in dataclasses.fields(self):  # type: ignore[arg-type]
            v = getattr(self, f.name)
            if isinstance(v, (MemRef, VectorOperand)):
                nv = v.relocate(deltas)
                if nv is not v:
                    changes[f.name] = nv
        if not changes:
            return self
        return dataclasses.replace(self, **changes)  # type: ignore[arg-type]


def check_repeat(repeat: int) -> None:
    """Validate a repeat field against the hardware encoding."""
    if not isinstance(repeat, (int, np.integer)):
        raise RepeatError(f"repeat must be an int, got {type(repeat)}")
    if not 1 <= repeat <= HW_MAX_REPEAT:
        raise RepeatError(
            f"repeat {repeat} outside hardware range 1..{HW_MAX_REPEAT}"
        )


def check_bounds(indices: np.ndarray, limit: int, what: str) -> None:
    """Verify gathered/scattered element indices stay inside a region."""
    if indices.size == 0:
        raise IsaError(f"{what}: empty index set")
    lo = int(indices.min())
    hi = int(indices.max())
    if lo < 0 or hi >= limit:
        raise IsaError(
            f"{what}: element indices [{lo}, {hi}] escape region of "
            f"size {limit}"
        )
