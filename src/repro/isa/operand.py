"""Memory operands for simulated instructions.

A :class:`MemRef` names a region of one buffer (scratch-pad or global
memory).  A :class:`VectorOperand` adds the per-instruction addressing
fields the real vector ISA has: *block stride* (distance between the 8
blocks of a repeat body) and *repeat stride* (distance between repeat
iterations), both expressed in 32-byte blocks exactly like the hardware
encodes them.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

import numpy as np

from ..dtypes import BLOCK_BYTES, VECTOR_BYTES_PER_REPEAT, DType
from ..errors import IsaError


@dataclass(frozen=True)
class MemRef:
    """A typed region of a named buffer.

    ``offset`` and ``size`` are in *elements* of ``dtype``.  ``buffer``
    is a symbolic name ("UB", "L1", ... or a global-memory tensor name)
    resolved by the simulator at execution time.
    """

    buffer: str
    offset: int
    size: int
    dtype: DType

    def __post_init__(self) -> None:
        if self.offset < 0:
            raise IsaError(f"negative offset {self.offset} in MemRef")
        if self.size <= 0:
            raise IsaError(f"non-positive size {self.size} in MemRef")

    @property
    def nbytes(self) -> int:
        return self.size * self.dtype.itemsize

    @property
    def end(self) -> int:
        """One past the last element index."""
        return self.offset + self.size

    def slice(self, start: int, size: int) -> "MemRef":
        """Sub-region, with bounds checking against this region."""
        if start < 0 or start + size > self.size:
            raise IsaError(
                f"slice [{start}, {start + size}) outside region of "
                f"size {self.size}"
            )
        return replace(self, offset=self.offset + start, size=size)

    def relocate(self, deltas: Mapping[str, int]) -> "MemRef":
        """Rebase this region by ``deltas[self.buffer]`` elements.

        The cheap primitive behind program relocation: a tile program
        lowered once for slice 0 of a workload is rebased to any other
        ``(N, C1)`` slice by shifting its global-memory operands, without
        re-running the lowering.  Buffers absent from ``deltas`` (the
        scratch-pads, whose layout is slice-invariant) are untouched and
        ``self`` is returned unchanged, so untouched operands stay
        shared between the original and the relocated program.
        """
        delta = deltas.get(self.buffer, 0)
        if delta == 0:
            return self
        return replace(self, offset=self.offset + delta)


@dataclass(frozen=True)
class VectorOperand:
    """A vector-instruction operand: base region plus addressing strides.

    ``blk_stride`` -- 32-byte blocks between consecutive blocks of one
    repeat body (1 = contiguous; ``Sw`` implements the strided patch
    access of pooling).  ``rep_stride`` -- 32-byte blocks between repeat
    iterations (0 makes every repeat re-address the same data, which is
    how a reduction accumulates into a fixed destination).
    """

    ref: MemRef
    blk_stride: int = 1
    rep_stride: int = 8

    def __post_init__(self) -> None:
        if self.blk_stride < 0 or self.rep_stride < 0:
            raise IsaError("vector operand strides must be non-negative")

    def relocate(self, deltas: Mapping[str, int]) -> "VectorOperand":
        """Rebase the underlying region (see :meth:`MemRef.relocate`)."""
        ref = self.ref.relocate(deltas)
        if ref is self.ref:
            return self
        return replace(self, ref=ref)

    def extent(self, repeat: int) -> tuple[int, int]:
        """Conservative ``(start, stop)`` element span for ``repeat``
        iterations, relative to the operand's buffer.

        Used by the pipelined scheduler's hazard tracking: the span
        covers every element :meth:`element_indices` can produce for any
        mask, so two operands whose extents are disjoint provably do not
        conflict.  Over-approximation is safe (it only serialises), so
        strides are walked without mask knowledge.
        """
        dt = self.ref.dtype
        lpb = dt.lanes_per_block
        blocks = VECTOR_BYTES_PER_REPEAT // BLOCK_BYTES
        reach = (
            (repeat - 1) * self.rep_stride * lpb
            + (blocks - 1) * self.blk_stride * lpb
            + lpb
        )
        return self.ref.offset, max(self.ref.end, self.ref.offset + reach)

    def element_indices(
        self, repeat: int, lane_idx: np.ndarray
    ) -> np.ndarray:
        """Flat element indices (relative to the buffer) touched by the
        instruction, shaped ``(repeat, len(lane_idx))``.

        ``lane_idx`` are enabled lane positions within a repeat body as
        produced by :meth:`repro.isa.mask.Mask.lanes`.
        """
        dt = self.ref.dtype
        lpb = dt.lanes_per_block
        blocks = lane_idx // lpb
        within = lane_idx % lpb
        lane_off = blocks * self.blk_stride * lpb + within
        rep_off = (
            np.arange(repeat, dtype=np.int64) * self.rep_stride * lpb
        )
        return self.ref.offset + rep_off[:, None] + lane_off[None, :]
