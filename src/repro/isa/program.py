"""Instruction streams.

A :class:`Program` is what a kernel builder or the DSL lowering emits and
what an :class:`repro.sim.aicore.AICore` executes.  It is a plain ordered
list plus cheap static analysis (cycle estimate, issue counts, lane
utilization) used by the bench harness to report the quantities the
paper reasons about.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator

from ..config import CostModel
from .instruction import Instruction


@dataclass
class Program:
    """An ordered instruction stream for one AI Core tile."""

    name: str = "kernel"
    instructions: list[Instruction] = field(default_factory=list)
    #: Extra scalar-loop iterations the lowering could not remove; each
    #: costs ``CostModel.loop_cycles`` (branch + counter on the Scalar
    #: Unit).  The standard TVM pooling pays one per vmax issue.
    scalar_loop_trips: int = 0

    def emit(self, instr: Instruction) -> Instruction:
        self.instructions.append(instr)
        return instr

    def extend(self, instrs: list[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def static_cycles(self, cost: CostModel) -> int:
        """Cycle estimate without executing (identical to execution cost;
        the simulator is not contention-modelling)."""
        total = sum(i.cycles(cost) for i in self.instructions)
        return total + self.scalar_loop_trips * cost.loop_cycles

    def issue_counts(self) -> Counter:
        """Instruction issues by opcode -- e.g. the paper's
        ``Oh*Ow*Kh`` vmax issues for the standard MaxPool."""
        return Counter(i.opcode for i in self.instructions)

    def unit_cycles(self, cost: CostModel) -> dict[str, int]:
        """Cycles by functional unit."""
        out: dict[str, int] = {}
        for i in self.instructions:
            out[i.unit] = out.get(i.unit, 0) + i.cycles(cost)
        if self.scalar_loop_trips:
            out["scalar"] = (
                out.get("scalar", 0) + self.scalar_loop_trips * cost.loop_cycles
            )
        return out

    def mean_lane_utilization(self) -> float | None:
        """Average vector-lane utilization across vector issues, weighted
        by repeats; ``None`` if the program has no vector instructions."""
        num = 0.0
        den = 0
        for i in self.instructions:
            u = i.lane_utilization()
            if u is None:
                continue
            repeat = getattr(i, "repeat", 1)
            num += u * repeat
            den += repeat
        return num / den if den else None

    def concat(self, other: "Program") -> "Program":
        """A new program running ``self`` then ``other``."""
        merged = Program(name=f"{self.name}+{other.name}")
        merged.instructions = [*self.instructions, *other.instructions]
        merged.scalar_loop_trips = (
            self.scalar_loop_trips + other.scalar_loop_trips
        )
        return merged
