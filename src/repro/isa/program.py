"""Instruction streams.

A :class:`Program` is what a kernel builder or the DSL lowering emits and
what an :class:`repro.sim.aicore.AICore` executes.  It is a plain ordered
list plus cheap static analysis (cycle estimate, issue counts, lane
utilization) used by the bench harness to report the quantities the
paper reasons about.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterator, Mapping

from ..config import CostModel
from .instruction import Instruction
from .operand import MemRef


@dataclass
class Program:
    """An ordered instruction stream for one AI Core tile."""

    name: str = "kernel"
    instructions: list[Instruction] = field(default_factory=list)
    #: Extra scalar-loop iterations the lowering could not remove; each
    #: costs ``CostModel.loop_cycles`` (branch + counter on the Scalar
    #: Unit).  The standard TVM pooling pays one per vmax issue.
    scalar_loop_trips: int = 0
    #: Scratch-pad allocation manifest: ``buffer name -> {allocation
    #: name -> MemRef}`` recorded by the kernel builder (see
    #: :meth:`repro.tik.builder.KernelBuilder.alloc`).  The memory
    #: sanitizer uses it to know which bytes of each scratch-pad are
    #: live while this program runs; programs built by hand (without a
    #: builder) may leave it empty, in which case the sanitizer falls
    #: back to whole-buffer bounds.
    allocations: dict[str, dict[str, "MemRef"]] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Relocation plan cache: which instruction indices touch a given
    #: set of buffers.  Computed on first relocation against that set and
    #: reused for every subsequent slice (see :meth:`relocate`).
    _reloc_plan: dict[frozenset, list[int]] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def emit(self, instr: Instruction) -> Instruction:
        self.instructions.append(instr)
        return instr

    def extend(self, instrs: list[Instruction]) -> None:
        self.instructions.extend(instrs)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def static_cycles(self, cost: CostModel, model=None) -> int:
        """Cycle estimate without executing (identical to execution cost;
        the cost model is data-independent).

        ``model`` selects the timing model (name, instance or ``None``
        for the default serial model -- see
        :mod:`repro.sim.scheduler`).  The serial model reproduces the
        historical issue-serial sum bit-identically; the pipelined model
        returns the scoreboard makespan.
        """
        from ..sim.scheduler import resolve_model

        return resolve_model(model).program_cycles(self, cost)

    def issue_counts(self) -> Counter:
        """Instruction issues by opcode -- e.g. the paper's
        ``Oh*Ow*Kh`` vmax issues for the standard MaxPool."""
        return Counter(i.opcode for i in self.instructions)

    def unit_cycles(self, cost: CostModel, model=None) -> dict[str, int]:
        """Busy cycles by functional unit (delegated to the timing
        model; identical across models -- overlap moves work in time,
        it does not change how long each unit is occupied)."""
        from ..sim.scheduler import resolve_model

        return resolve_model(model).unit_cycles(self, cost)

    def mean_lane_utilization(self) -> float | None:
        """Average vector-lane utilization across vector issues, weighted
        by repeats; ``None`` if the program has no vector instructions."""
        num = 0.0
        den = 0
        for i in self.instructions:
            u = i.lane_utilization()
            if u is None:
                continue
            repeat = getattr(i, "repeat", 1)
            num += u * repeat
            den += repeat
        return num / den if den else None

    def relocate(
        self, deltas: Mapping[str, int], name: str | None = None
    ) -> "Program":
        """A copy of this program with global-memory operands rebased.

        ``deltas`` maps buffer names (global-memory tensor names) to
        element offsets to add.  This is how the program cache turns one
        lowered tile program into the program of *any* ``(N, C1)`` slice
        of the same workload: every slice's program is identical except
        for where in global memory it loads and stores.

        The copy shares every instruction that does not touch a rebased
        buffer (instructions are frozen, so sharing is safe), and the
        indices of those that do are computed once per buffer set and
        cached, so relocating a program for its 2nd..Nth slice costs a
        list copy plus a handful of dataclass copies -- orders of
        magnitude cheaper than re-lowering.
        """
        effective = {b: d for b, d in deltas.items() if d != 0}
        clone = Program(
            name=self.name if name is None else name,
            scalar_loop_trips=self.scalar_loop_trips,
            # Relocation rebases *global-memory* operands only; the
            # scratch-pad allocation manifest is identical on any slice.
            allocations={b: dict(m) for b, m in self.allocations.items()},
        )
        if not effective:
            clone.instructions = list(self.instructions)
            return clone
        key = frozenset(effective)
        plan = self._reloc_plan.get(key)
        if plan is None:
            plan = [
                idx
                for idx, instr in enumerate(self.instructions)
                if instr.buffers() & key
            ]
            self._reloc_plan[key] = plan
        instrs = list(self.instructions)
        for idx in plan:
            instrs[idx] = instrs[idx].relocate(effective)
        clone.instructions = instrs
        return clone

    def gm_buffers(self, scratch: frozenset[str]) -> frozenset[str]:
        """Buffers referenced that are not scratch-pads (i.e. global)."""
        out: set[str] = set()
        for instr in self.instructions:
            out |= instr.buffers()
        return frozenset(out - scratch)

    def merge(self, other: "Program") -> "Program":
        """A new program running ``self`` then ``other``.

        Scalar-loop trips add (each sub-program's residual loops still
        run), and the result is a fresh :class:`Program` whose
        relocation-plan memo starts empty -- instruction indices shift
        by ``len(self)``, so inheriting either parent's plan would
        relocate the wrong instructions.
        """
        merged = Program(name=f"{self.name}+{other.name}")
        merged.instructions = [*self.instructions, *other.instructions]
        merged.scalar_loop_trips = (
            self.scalar_loop_trips + other.scalar_loop_trips
        )
        # Union the allocation manifests; on a name collision within a
        # buffer, namespace the colliding entries by parent program so
        # the union stays lossless (both parents' regions remain live
        # for the sanitizer -- the merged program runs both halves
        # against whatever the allocator handed each builder).
        for buf, refs in self.allocations.items():
            merged.allocations[buf] = dict(refs)
        for buf, refs in other.allocations.items():
            dst = merged.allocations.setdefault(buf, {})
            for key, ref in refs.items():
                if key in dst and dst[key] != ref:
                    dst[f"{other.name}:{key}"] = ref
                else:
                    dst[key] = ref
        return merged

    #: Historical name for :meth:`merge`.
    concat = merge
