"""Stateful layers running on the simulated chip.

Each layer's :meth:`forward` consumes and produces ``NC1HWC0`` fp16
tensors, remembers whatever its backward pass needs (input shape, the
Argmax mask), and adds the simulated cycles to its counters.  The
``impl`` arguments select the paper's implementation variants, so a
network can be timed with and without the Im2col/Col2im acceleration by
flipping two strings.
"""

from __future__ import annotations

import abc

import numpy as np

from ..config import ASCEND910, ChipConfig
from ..errors import LayoutError, ReproError
from ..ops import (
    PoolSpec,
    avgpool,
    avgpool_backward,
    maxpool,
    maxpool_backward,
)
from ..ops.conv2d import conv2d, conv2d_input_grad


class Layer(abc.ABC):
    """Base layer: forward/backward plus cycle accounting."""

    def __init__(self, config: ChipConfig = ASCEND910) -> None:
        self.config = config
        self.forward_cycles = 0
        self.backward_cycles = 0

    @abc.abstractmethod
    def forward(self, x: np.ndarray) -> np.ndarray:
        """Run the layer; remembers state needed by backward."""

    @abc.abstractmethod
    def backward(self, grad: np.ndarray) -> np.ndarray:
        """Propagate gradients; requires a prior forward call."""

    @property
    def total_cycles(self) -> int:
        return self.forward_cycles + self.backward_cycles

    def reset_counters(self) -> None:
        self.forward_cycles = 0
        self.backward_cycles = 0


class MaxPool2d(Layer):
    """MaxPool with the Argmax mask kept for training.

    ``impl``/``backward_impl`` pick the forward and merge variants
    ("standard", "im2col", ... / "standard", "col2im").
    """

    def __init__(
        self,
        spec: PoolSpec,
        impl: str = "im2col",
        backward_impl: str = "col2im",
        config: ChipConfig = ASCEND910,
    ) -> None:
        super().__init__(config)
        self.spec = spec
        self.impl = impl
        self.backward_impl = backward_impl
        self._mask: np.ndarray | None = None
        self._in_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        res = maxpool(
            x, self.spec, impl=self.impl, with_mask=True,
            config=self.config, collect_trace=False,
        )
        self._mask = res.mask
        self._in_hw = (x.shape[2], x.shape[3])
        self.forward_cycles += res.cycles
        return res.output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._mask is None or self._in_hw is None:
            raise ReproError("MaxPool2d.backward before forward")
        res = maxpool_backward(
            self._mask, grad, self.spec, *self._in_hw,
            impl=self.backward_impl, config=self.config,
            collect_trace=False,
        )
        self.backward_cycles += res.cycles
        return res.output


class AvgPool2d(Layer):
    """AvgPool; no mask needed (Section V-C)."""

    def __init__(
        self,
        spec: PoolSpec,
        impl: str = "im2col",
        backward_impl: str = "col2im",
        config: ChipConfig = ASCEND910,
    ) -> None:
        super().__init__(config)
        self.spec = spec
        self.impl = impl
        self.backward_impl = backward_impl
        self._in_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        res = avgpool(
            x, self.spec, impl=self.impl, config=self.config,
            collect_trace=False,
        )
        self._in_hw = (x.shape[2], x.shape[3])
        self.forward_cycles += res.cycles
        return res.output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_hw is None:
            raise ReproError("AvgPool2d.backward before forward")
        res = avgpool_backward(
            grad, self.spec, *self._in_hw,
            impl=self.backward_impl, config=self.config,
            collect_trace=False,
        )
        self.backward_cycles += res.cycles
        return res.output


class Conv2d(Layer):
    """Convolution on the Cube Unit (weights fixed; only the input
    gradient is computed -- weight gradients are out of the paper's
    scope)."""

    def __init__(
        self,
        weights: np.ndarray,
        spec: PoolSpec,
        config: ChipConfig = ASCEND910,
    ) -> None:
        super().__init__(config)
        if weights.ndim != 4:
            raise LayoutError(
                f"Conv2d weights must be (Cout, C, Kh, Kw), got "
                f"{weights.shape}"
            )
        self.weights = np.ascontiguousarray(weights.astype(np.float16))
        self.spec = spec
        self._in_hw: tuple[int, int] | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        res = conv2d(
            x, self.weights, self.spec, config=self.config,
            collect_trace=False,
        )
        self._in_hw = (x.shape[2], x.shape[3])
        self.forward_cycles += res.cycles
        return res.output

    def backward(self, grad: np.ndarray) -> np.ndarray:
        if self._in_hw is None:
            raise ReproError("Conv2d.backward before forward")
        res = conv2d_input_grad(
            grad, self.weights, self.spec, *self._in_hw,
            config=self.config, collect_trace=False,
        )
        self.backward_cycles += res.cycles
        return res.output
