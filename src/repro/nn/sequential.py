"""A minimal sequential container with cycle reporting."""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .layers import Layer


class Sequential:
    """Run layers in order; backward in reverse order.

    The per-layer cycle counters make it easy to see what fraction of a
    block's simulated time pooling takes -- the paper's motivating
    question ("while the performance impact of pooling is low compared
    to convolution, a naive implementation can hinder the overall
    performance of a CNN").
    """

    def __init__(self, *layers: Layer) -> None:
        if not layers:
            raise ReproError("Sequential needs at least one layer")
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, grad: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    @property
    def total_cycles(self) -> int:
        return sum(l.total_cycles for l in self.layers)

    def cycle_report(self) -> str:
        """Per-layer forward/backward cycle table."""
        lines = ["layer                     forward     backward"]
        for i, layer in enumerate(self.layers):
            name = f"{i}:{type(layer).__name__}"
            lines.append(
                f"{name:<22s} {layer.forward_cycles:>10d} "
                f"{layer.backward_cycles:>12d}"
            )
        lines.append(
            f"{'total':<22s} "
            f"{sum(l.forward_cycles for l in self.layers):>10d} "
            f"{sum(l.backward_cycles for l in self.layers):>12d}"
        )
        return "\n".join(lines)

    def reset_counters(self) -> None:
        for layer in self.layers:
            layer.reset_counters()
