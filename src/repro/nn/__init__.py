"""Layer-level API on top of the simulated operators.

The paper's operators are kernel-granularity; a framework user thinks
in layers with state (the MaxPool layer must keep its Argmax mask
between forward and backward, Section V-A).  This package provides that
thin layer: :class:`MaxPool2d`, :class:`AvgPool2d`, :class:`Conv2d` and
a :class:`Sequential` container, each accumulating the simulated cycle
counts so a whole network's pooling cost can be inspected.
"""

from .layers import AvgPool2d, Conv2d, Layer, MaxPool2d
from .sequential import Sequential

__all__ = ["Layer", "MaxPool2d", "AvgPool2d", "Conv2d", "Sequential"]
