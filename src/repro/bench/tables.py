"""Table I: MaxPool input sizes in CNNs."""

from __future__ import annotations

from ..workloads import CNN_MAXPOOL_LAYERS, LayerConfig


def table1_rows() -> list[tuple[str, list[str]]]:
    """Rows of Table I: (CNN name, [input-size cells])."""
    rows = []
    max_inputs = max(len(v) for v in CNN_MAXPOOL_LAYERS.values())
    for cnn, layers in CNN_MAXPOOL_LAYERS.items():
        cells = [f"{l.h},{l.w},{l.c}" for l in layers]
        cells += ["-"] * (max_inputs - len(cells))
        rows.append((cnn, cells))
    return rows


def render_table1() -> str:
    """Text rendering of Table I, matching the paper's layout."""
    rows = table1_rows()
    n_inputs = len(rows[0][1])
    headers = ["CNN"] + [f"Input {i + 1}" for i in range(n_inputs)]
    table = [headers] + [[cnn, *cells] for cnn, cells in rows]
    widths = [
        max(len(r[c]) for r in table) for c in range(len(headers))
    ]
    lines = ["TABLE I: MAXPOOL INPUT SIZES IN CNNS"]
    for i, row in enumerate(table):
        lines.append(
            "  ".join(cell.ljust(w) for cell, w in zip(row, widths))
        )
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def bold_configs() -> list[LayerConfig]:
    """The configurations highlighted in bold (evaluated in Figure 7)."""
    return [
        l
        for layers in CNN_MAXPOOL_LAYERS.values()
        for l in layers
        if l.evaluated
    ]
