"""ASCII charts: the figures, viewable in a terminal.

The paper's figures are cycle-count line charts; for environments
without a plotting stack, :func:`render_ascii_chart` draws one panel as
horizontal bars (one group per x value, one bar per implementation,
lengths proportional to cycles).  Used by ``python -m repro.bench``
and the examples for quick visual inspection; the CSV/JSON exports
(:mod:`repro.bench.export`) feed real plotting tools.
"""

from __future__ import annotations

from .figures import FigureSeries

#: Bar glyphs: one per implementation, cycled.
_GLYPHS = "#*+o@%"


def render_ascii_chart(fig: FigureSeries, width: int = 60) -> str:
    """Horizontal-bar rendering of one figure panel.

    ``width`` is the length of the longest bar in characters; all bars
    share one linear cycle scale so relative heights read directly.
    """
    impls = list(fig.series)
    peak = max(m.cycles for ms in fig.series.values() for m in ms)
    if peak <= 0:
        raise ValueError("figure has no positive cycle counts")
    label_w = max(len(x) for x in fig.x)
    lines = [f"Figure {fig.figure}: {fig.title}  (bar = cycles, "
             f"full width = {peak})"]
    for impl, glyph in zip(impls, _GLYPHS):
        lines.append(f"  {glyph} {impl}")
    for idx, xval in enumerate(fig.x):
        lines.append("")
        for impl, glyph in zip(impls, _GLYPHS):
            cycles = fig.series[impl][idx].cycles
            bar = glyph * max(1, round(cycles / peak * width))
            label = xval if impl == impls[0] else ""
            lines.append(f"{label:>{label_w}} |{bar} {cycles}")
    return "\n".join(lines)
