"""Measurement machinery mirroring the paper's methodology.

"Each evaluation was repeated ten times, and the graphs show the
average value and a 95% confidence interval" (Section VI).  The
simulated chip's cycle counters are deterministic, so repeating yields
identical values and a zero-width interval; the harness still performs
the repeats (cheaply, re-running only when asked) so the reported
numbers carry the same statistics the paper's do.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

#: two-sided 97.5% quantile of Student's t for n-1 degrees of freedom,
#: n = 2..10 (enough for the paper's ten repeats).
_T975 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571,
    6: 2.447, 7: 2.365, 8: 2.306, 9: 2.262,
}


@dataclass(frozen=True)
class Measurement:
    """Cycle statistics of one (workload, implementation) point."""

    label: str
    samples: tuple[int, ...]

    @property
    def mean(self) -> float:
        return sum(self.samples) / len(self.samples)

    @property
    def ci95(self) -> float:
        """Half-width of the 95% confidence interval of the mean."""
        n = len(self.samples)
        if n < 2:
            return 0.0
        mean = self.mean
        var = sum((s - mean) ** 2 for s in self.samples) / (n - 1)
        t = _T975.get(n - 1, 1.96)
        return t * math.sqrt(var / n)

    @property
    def cycles(self) -> int:
        """The representative value (deterministic simulator: = mean)."""
        return int(round(self.mean))


def measure(
    fn: Callable[[], int],
    label: str,
    repeats: int = 1,
) -> Measurement:
    """Run ``fn`` (returning a cycle count) ``repeats`` times.

    ``repeats=10`` reproduces the paper's protocol; the default of 1 is
    adequate because the simulator is deterministic (asserted here).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    samples = tuple(fn() for _ in range(repeats))
    if len(set(samples)) > 1:
        raise AssertionError(
            f"{label}: simulator returned varying cycle counts {samples}"
        )
    return Measurement(label=label, samples=samples)
