"""Benchmark harness: regenerate every table and figure of the paper.

* :mod:`repro.bench.harness` -- repeated measurement with confidence
  intervals (the paper repeats each evaluation ten times and reports a
  95% CI; the simulator is deterministic, so the CI collapses to zero
  width, which the harness records explicitly).
* :mod:`repro.bench.figures` -- series builders for Figures 7a-7c and
  8a-8c.
* :mod:`repro.bench.tables`  -- Table I.
* :mod:`repro.bench.report`  -- text rendering plus the headline-speedup
  extraction ("speedups of 3.2x, 5x, and 5.8x", Section VI-A).
"""

from .harness import Measurement, measure
from .figures import (
    FigureSeries,
    fig7a,
    fig7b,
    fig7c,
    fig8,
    fig8_sizes,
)
from .tables import table1_rows, render_table1
from .report import headline_speedups, render_figure, render_speedups
from .breakdown import Breakdown, breakdown, compare_breakdowns, render_breakdown
from .export import figure_to_csv, figure_to_json, write_figure, write_json
from .ascii_chart import render_ascii_chart

__all__ = [
    "Measurement",
    "measure",
    "FigureSeries",
    "fig7a",
    "fig7b",
    "fig7c",
    "fig8",
    "fig8_sizes",
    "table1_rows",
    "render_table1",
    "headline_speedups",
    "render_figure",
    "render_speedups",
    "Breakdown",
    "breakdown",
    "compare_breakdowns",
    "render_breakdown",
    "figure_to_csv",
    "figure_to_json",
    "write_figure",
    "write_json",
    "render_ascii_chart",
]
