"""Text rendering of benchmark results and headline-number extraction."""

from __future__ import annotations

from ..config import ChipConfig
from .figures import FigureSeries


def render_figure(fig: FigureSeries) -> str:
    """A text table of one figure: one row per x value, one cycle-count
    column per implementation, plus speedup columns vs the first
    (baseline) series."""
    impls = list(fig.series)
    headers = [fig.x_label] + [f"{i} [cycles]" for i in impls]
    baseline = impls[0]
    for accel in impls[1:]:
        headers.append(f"speedup {accel.split()[-1]}")
    rows = [headers]
    for idx, xval in enumerate(fig.x):
        row = [xval]
        for impl in impls:
            m = fig.series[impl][idx]
            ci = f" ±{m.ci95:.0f}" if m.ci95 else ""
            row.append(f"{m.cycles}{ci}")
        base = fig.series[baseline][idx].cycles
        for accel in impls[1:]:
            row.append(f"{base / fig.series[accel][idx].cycles:.2f}x")
        rows.append(row)
    widths = [max(len(r[c]) for r in rows) for c in range(len(headers))]
    lines = [f"Figure {fig.figure}: {fig.title}"]
    for i, row in enumerate(rows):
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
        if i == 0:
            lines.append("-" * (sum(widths) + 2 * (len(widths) - 1)))
    return "\n".join(lines)


def headline_speedups(
    fig7a_series: FigureSeries,
    fig7b_series: FigureSeries,
    fig7c_series: FigureSeries,
) -> dict[str, float]:
    """The paper's Section VI-A headline: "In the largest input, the
    accelerated implementations achieve speedups of 3.2x, 5x, and 5.8x
    on the graphs in Figure 7, respectively."

    The largest input is the first x position (147,147,64).
    """
    out = {}
    for key, fig in (
        ("maxpool", fig7a_series),
        ("maxpool+mask", fig7b_series),
        ("maxpool backward", fig7c_series),
    ):
        impls = list(fig.series)
        baseline, accel = impls[0], impls[1]
        out[key] = fig.speedup(baseline, accel)[0]
    return out


#: The values the paper reports for the largest input.
PAPER_HEADLINES = {
    "maxpool": 3.2,
    "maxpool+mask": 5.0,
    "maxpool backward": 5.8,
}


def render_speedups(measured: dict[str, float]) -> str:
    """Measured-vs-paper table for the Section VI-A headline numbers."""
    lines = ["Headline speedups at the largest input (147,147,64):"]
    for key, value in measured.items():
        paper = PAPER_HEADLINES[key]
        lines.append(
            f"  {key:18s} measured {value:4.2f}x   paper {paper:.1f}x"
        )
    return "\n".join(lines)


def render_config(config: ChipConfig) -> str:
    """One-line summary of the simulated chip used for a run."""
    c = config.cost
    return (
        f"Ascend910-sim: {config.num_cores} cores @ {config.frequency_mhz} MHz, "
        f"UB {config.ub_bytes // 1024} KiB, L1 {config.l1_bytes // 1024} KiB; "
        f"cost(issue={c.issue_cycles}, im2col={c.im2col_fractal_cycles}/fractal, "
        f"col2im={c.col2im_fractal_cycles}/fractal, dma={c.dma_bytes_per_cycle} B/cy)"
    )
