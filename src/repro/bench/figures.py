"""Series builders for the paper's figures.

Each function regenerates the data behind one figure: the same
workloads, the same implementations, cycle counts on the simulated
Ascend 910.  The returned :class:`FigureSeries` carries the x-axis and
one cycle-count series per implementation, ready for
:func:`repro.bench.report.render_figure`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import ASCEND910, ASCEND910_SINGLE_CORE, ChipConfig
from ..dtypes import FLOAT16
from ..errors import ReproError
from ..ops import PoolSpec, run_backward, run_forward
from ..ops.registry import backward_impl, forward_impl
from ..ops.reference import maxpool_argmax_ref
from ..plan import tiling_threshold
from ..workloads import INCEPTION_V3_EVAL, LayerConfig, make_gradient, make_input
from .harness import Measurement, measure


@dataclass
class FigureSeries:
    """The data behind one figure panel."""

    figure: str
    title: str
    x_label: str
    x: list[str] = field(default_factory=list)
    #: implementation label -> one Measurement per x position.
    series: dict[str, list[Measurement]] = field(default_factory=dict)

    def add(self, impl: str, measurement: Measurement) -> None:
        self.series.setdefault(impl, []).append(measurement)

    def cycles(self, impl: str) -> list[int]:
        return [m.cycles for m in self.series[impl]]

    def speedup(self, baseline: str, accelerated: str) -> list[float]:
        """Per-point speedup of ``accelerated`` over ``baseline``."""
        base = self.cycles(baseline)
        fast = self.cycles(accelerated)
        return [b / f for b, f in zip(base, fast)]


def _forward_cycles(
    layer: LayerConfig,
    impl_name: str,
    with_mask: bool,
    config: ChipConfig,
    seed: int,
    model: str = "serial",
    plan: str = "default",
) -> int:
    x = make_input(layer.h, layer.w, layer.c, seed=seed)
    impl = forward_impl(impl_name, "max", with_mask)
    # Cycles-only analytic mode: cycle counts are identical to numeric
    # execution (data-independent cost model) but the NumPy data pass and
    # per-instruction trace allocation are skipped, so figure sweeps run
    # at program-cache speed.
    return run_forward(
        x, layer.spec, impl, config, collect_trace=False,
        execute="cycles", model=model, plan=plan,
    ).cycles


def fig7a(
    config: ChipConfig = ASCEND910, repeats: int = 1, seed: int = 0,
    model: str = "serial", plan: str = "default",
) -> FigureSeries:
    """Figure 7a: MaxPool forward, standard vs Im2col, on the three
    InceptionV3 input sizes (kernel (3,3), stride (2,2), no padding).

    ``model`` selects the timing model ("serial" reproduces the paper's
    in-order counts; "pipelined" reports scoreboard makespans).
    ``plan`` selects the planning policy (``"default"`` reproduces the
    paper's heuristic byte-identically; ``"autotuned"`` consults the
    persisted autotune table, see :mod:`repro.plan.autotune`).
    """
    fig = FigureSeries(
        figure="7a",
        title="Maxpool",
        x_label="input size (InceptionV3)",
    )
    for layer in INCEPTION_V3_EVAL:
        fig.x.append(f"({layer.h},{layer.w},{layer.c})")
        for impl in ("standard", "im2col"):
            fig.add(
                _fig7_label(impl),
                measure(
                    lambda i=impl: _forward_cycles(
                        layer, i, False, config, seed, model,
                        plan,
                    ),
                    label=f"7a/{layer.label}/{impl}",
                    repeats=repeats,
                ),
            )
    return fig


def fig7b(
    config: ChipConfig = ASCEND910, repeats: int = 1, seed: int = 0,
    model: str = "serial", plan: str = "default",
) -> FigureSeries:
    """Figure 7b: MaxPool forward *with the Argmax mask*."""
    fig = FigureSeries(
        figure="7b",
        title="Maxpool and Argmax Mask",
        x_label="input size (InceptionV3)",
    )
    for layer in INCEPTION_V3_EVAL:
        fig.x.append(f"({layer.h},{layer.w},{layer.c})")
        for impl in ("standard", "im2col"):
            fig.add(
                _fig7_label(impl),
                measure(
                    lambda i=impl: _forward_cycles(
                        layer, i, True, config, seed, model,
                        plan,
                    ),
                    label=f"7b/{layer.label}/{impl}",
                    repeats=repeats,
                ),
            )
    return fig


def fig7c(
    config: ChipConfig = ASCEND910, repeats: int = 1, seed: int = 0,
    model: str = "serial", plan: str = "default",
) -> FigureSeries:
    """Figure 7c: MaxPool backward, standard (vadd merge) vs Col2im."""
    fig = FigureSeries(
        figure="7c",
        title="Maxpool Backward",
        x_label="input size (InceptionV3)",
    )
    for layer in INCEPTION_V3_EVAL:
        fig.x.append(f"({layer.h},{layer.w},{layer.c})")
        x = make_input(layer.h, layer.w, layer.c, seed=seed)
        mask = maxpool_argmax_ref(x, layer.spec)
        oh, ow = layer.out_hw()
        grad = make_gradient(x.shape[1], oh, ow, seed=seed + 1)

        def run(impl_name: str) -> int:
            impl = backward_impl(impl_name, "max")
            return run_backward(
                grad, layer.spec, impl, layer.h, layer.w,
                mask=mask, config=config, collect_trace=False,
                execute="cycles", model=model, plan=plan,
            ).cycles

        for impl in ("standard", "col2im"):
            label = "Maxpool backward" if impl == "standard" else (
                "Maxpool backward with Col2im"
            )
            fig.add(
                label,
                measure(
                    lambda i=impl: run(i),
                    label=f"7c/{layer.label}/{impl}",
                    repeats=repeats,
                ),
            )
    return fig


def _fig7_label(impl: str) -> str:
    return "Maxpool" if impl == "standard" else "Maxpool with Im2col"


#: The implementations each Figure 8 panel compares.  "An additional
#: implementation of the X-Y split is shown for the stride of (2,2)."
FIG8_IMPLS: dict[int, tuple[str, ...]] = {
    1: ("standard", "im2col", "expansion"),
    2: ("standard", "im2col", "expansion", "xysplit"),
    3: ("standard", "im2col", "expansion"),
}

_FIG8_LABELS = {
    "standard": "Maxpool",
    "im2col": "Maxpool with Im2col",
    "expansion": "Maxpool with expansion",
    "xysplit": "Maxpool with X-Y split",
}


def fig8_sizes(
    stride: int,
    kernel: int = 3,
    config: ChipConfig = ASCEND910_SINGLE_CORE,
    step: int = 2,
    start: int | None = None,
) -> list[int]:
    """The Figure 8 x-axis: square input sizes increasing in steps of
    two "until the tiling threshold is reached", where the threshold is
    the largest size every compared implementation can run untiled."""
    spec = PoolSpec.square(kernel, stride)
    impls = [forward_impl(n, "max") for n in FIG8_IMPLS[stride]]
    threshold = min(
        tiling_threshold(
            lambda s: spec.with_image(s, s), impl.footprint, config, FLOAT16
        )
        for impl in impls
    )
    first = start if start is not None else kernel + stride
    if first > threshold:
        raise ReproError(
            f"no untiled sizes exist between {first} and {threshold}"
        )
    return list(range(first, threshold + 1, step))


def fig8(
    stride: int,
    kernel: int = 3,
    config: ChipConfig = ASCEND910_SINGLE_CORE,
    sizes: list[int] | None = None,
    repeats: int = 1,
    seed: int = 0,
    model: str = "serial",
    plan: str = "default",
) -> FigureSeries:
    """One Figure 8 panel: MaxPool forward implementations vs input
    size for a fixed stride; N = C1 = 1 so a single AI Core runs."""
    if stride not in FIG8_IMPLS:
        raise ReproError(f"Figure 8 evaluates strides 1..3, not {stride}")
    spec = PoolSpec.square(kernel, stride)
    if sizes is None:
        sizes = fig8_sizes(stride, kernel, config)
    panel = {1: "8a", 2: "8b", 3: "8c"}[stride]
    fig = FigureSeries(
        figure=panel,
        title=f"Stride = ({stride},{stride})",
        x_label="input height and width",
    )
    for size in sizes:
        fig.x.append(str(size))
        x = make_input(size, size, FLOAT16.c0, seed=seed)

        def run(impl_name: str) -> int:
            impl = forward_impl(impl_name, "max")
            return run_forward(
                x, spec, impl, config, collect_trace=False,
                execute="cycles", model=model, plan=plan,
            ).cycles

        for impl in FIG8_IMPLS[stride]:
            fig.add(
                _FIG8_LABELS[impl],
                measure(
                    lambda i=impl: run(i),
                    label=f"{panel}/{size}/{impl}",
                    repeats=repeats,
                ),
            )
    return fig
