"""Command-line figure regeneration.

Usage::

    python -m repro.bench table1
    python -m repro.bench fig7a fig7b fig7c
    python -m repro.bench fig8a --out results/
    python -m repro.bench all --out results/ --repeats 10

Prints each table/figure as text and, with ``--out``, also writes
CSV/JSON series files.

``--autotune`` switches to the cost-model autotuner
(:mod:`repro.plan.autotune`): instead of figure targets it searches
the plan space of every DEFAULT_GRID workload, persists the winning
plans to the best-config table (``--table``, consulted at run time by
``plan="autotuned"``), and exports ``BENCH_autotune.json`` (cycles won
vs. the heuristic planner)::

    python -m repro.bench --autotune
    python -m repro.bench --autotune --subset 2 --out results/
    python -m repro.bench fig7a --plan autotuned
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import (
    fig7a,
    fig7b,
    fig7c,
    fig8,
    headline_speedups,
    render_figure,
    render_speedups,
    render_table1,
)
from .ascii_chart import render_ascii_chart
from .export import write_figure, write_json
from .report import render_config
from ..config import ASCEND910

FIGS = {
    "fig7a": lambda repeats, model, plan: fig7a(
        repeats=repeats, model=model, plan=plan
    ),
    "fig7b": lambda repeats, model, plan: fig7b(
        repeats=repeats, model=model, plan=plan
    ),
    "fig7c": lambda repeats, model, plan: fig7c(
        repeats=repeats, model=model, plan=plan
    ),
    "fig8a": lambda repeats, model, plan: fig8(
        1, repeats=repeats, model=model, plan=plan
    ),
    "fig8b": lambda repeats, model, plan: fig8(
        2, repeats=repeats, model=model, plan=plan
    ),
    "fig8c": lambda repeats, model, plan: fig8(
        3, repeats=repeats, model=model, plan=plan
    ),
}


def _run_autotune(args) -> int:
    """The ``--autotune`` mode: search, persist the table, export."""
    from ..plan import (
        DEFAULT_TABLE_PATH,
        autotune_grid,
        grid_workloads,
        summarize_rows,
    )
    from ..validate import DEFAULT_GRID

    grid = DEFAULT_GRID[: args.subset] if args.subset else DEFAULT_GRID
    models = (
        ("serial", "pipelined") if args.model is None else (args.model,)
    )
    print(render_config(ASCEND910))
    print()
    print(
        f"autotuning {2 * len(grid)} workloads "
        f"({len(grid)} grid entries x fwd/bwd), "
        f"models={'/'.join(models)}, exhaustive chunk grid"
    )
    t0 = time.perf_counter()
    table, rows = autotune_grid(
        grid_workloads(grid), config=ASCEND910, models=models
    )
    elapsed = time.perf_counter() - t0
    for row in rows:
        print(
            f"  {row['workload']}\n"
            f"    default {row['requested_impl']}"
            f"/chunk={row['baseline_chunk']}: "
            f"{row['baseline_cycles']} cycles -> best {row['best_impl']}"
            f"/chunk={row['best_chunk']}/{row['best_model']}: "
            f"{row['best_cycles']} cycles "
            f"({row['cycles_won']:.3f}x, {row['evaluated']} plans)"
        )
    summary = summarize_rows(rows)
    print(
        f"cycles won vs heuristic planner: "
        f"median {summary['median_cycles_won']:.3f}x, "
        f"best {summary['best_cycles_won']:.3f}x, "
        f"mean {summary['mean_cycles_won']:.3f}x "
        f"over {summary['workloads']} workloads ({elapsed:.3f}s)"
    )
    table_path = table.save(args.table or DEFAULT_TABLE_PATH)
    print(f"  wrote {table_path}")
    out = args.out or "results"
    os.makedirs(out, exist_ok=True)
    path = write_json(
        {
            "grid_entries": len(grid),
            "models": list(models),
            "chunks": "exhaustive",
            "execute_mode": "cycles",
            "table": str(table_path),
            "workloads": rows,
            "summary": summary,
        },
        os.path.join(out, "BENCH_autotune.json"),
    )
    print(f"  wrote {path}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated Ascend 910.",
    )
    # Choices are validated by hand below: argparse's choices= rejects
    # the empty list a bare ``--autotune`` invocation leaves behind.
    parser.add_argument(
        "targets",
        nargs="*",
        default=[],
        metavar="target",
        help="which artifacts to regenerate (omitted with --autotune): "
        f"{', '.join([*FIGS, 'table1', 'headline', 'all'])}",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for CSV/JSON exports (figures only)",
    )
    parser.add_argument(
        "--ascii", action="store_true",
        help="additionally draw each figure as an ASCII bar chart",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="measurement repeats (the paper used 10; the simulator is "
        "deterministic, so 1 is exact)",
    )
    parser.add_argument(
        "--model", choices=("serial", "pipelined", "both"), default=None,
        help="timing model: 'serial' (the default for figures) "
        "reproduces the paper's in-order cycle counts; 'pipelined' "
        "reports scoreboard makespans with cross-unit overlap; 'both' "
        "regenerates each figure under both models (figure targets "
        "only -- the autotuner already searches both)",
    )
    parser.add_argument(
        "--plan", choices=("default", "autotuned"), default="default",
        help="planning policy for figure sweeps: 'default' (the "
        "default) is the paper's heuristic, byte-identical to "
        "pre-autotuner output; 'autotuned' consults the persisted "
        "best-config table (generate it first with --autotune)",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="run the cost-model autotuner over DEFAULT_GRID instead "
        "of regenerating figures: search (row chunk, impl variant, "
        "timing model) per workload via execute='cycles', persist the "
        "winning plans to --table, and export BENCH_autotune.json",
    )
    parser.add_argument(
        "--subset", type=int, default=None, metavar="N",
        help="with --autotune: search only the first N DEFAULT_GRID "
        "entries (2N workloads) -- the CI smoke configuration",
    )
    parser.add_argument(
        "--table", default=None, metavar="PATH",
        help="with --autotune: where to persist the best-config table "
        "(default results/autotune_table.json, the path "
        "plan='autotuned' consults)",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(
            f"--repeats must be a positive integer, got {args.repeats}"
        )
    if args.autotune:
        if args.targets:
            parser.error(
                "--autotune replaces figure regeneration; drop the "
                f"targets {args.targets} or the flag"
            )
        if args.model == "both":
            parser.error(
                "--autotune already searches both timing models; pass "
                "--model serial or --model pipelined to restrict the "
                "search, or omit --model"
            )
        if args.plan != "default":
            parser.error(
                "--plan selects how *figures* are planned; --autotune "
                "builds the table that plan='autotuned' consults, so "
                "the two cannot be combined"
            )
        if args.subset is not None and args.subset < 1:
            parser.error(
                f"--subset must be a positive integer, got {args.subset}"
            )
    else:
        if not args.targets:
            parser.error("at least one target is required")
        known = (*FIGS, "table1", "headline", "all")
        unknown = [t for t in args.targets if t not in known]
        if unknown:
            parser.error(
                f"unknown target(s) {unknown}; choose from "
                f"{', '.join(known)}"
            )
        if args.subset is not None:
            parser.error("--subset only applies to --autotune")
        if args.table is not None:
            parser.error("--table only applies to --autotune")
    if args.out is not None:
        # Fail fast with a clear message on degenerate export paths
        # (empty string, an existing file, an uncreatable directory)
        # instead of crashing mid-run after the sweeps already ran.
        if not args.out.strip():
            parser.error("--out must be a non-empty directory path")
        if os.path.exists(args.out) and not os.path.isdir(args.out):
            parser.error(
                f"--out {args.out!r} exists and is not a directory"
            )
        try:
            os.makedirs(args.out, exist_ok=True)
        except OSError as exc:
            parser.error(f"--out {args.out!r} is not creatable: {exc}")

    if args.autotune:
        return _run_autotune(args)

    targets = list(args.targets)
    if "all" in targets:
        targets = ["table1", *FIGS, "headline"]
    models = (
        ("serial", "pipelined")
        if args.model == "both"
        else (args.model or "serial",)
    )

    print(render_config(ASCEND910))
    print()
    built = {}
    wall_clock: dict[str, float] = {}

    def timed(name: str, fn):
        t0 = time.perf_counter()
        result = fn()
        wall_clock[name] = wall_clock.get(name, 0.0) + (
            time.perf_counter() - t0
        )
        return result

    def figure(name: str, model: str):
        # NB: membership, not truthiness -- a figure object is held
        # even if it were ever falsy, so repeated targets never re-run
        # the sweep.  Under --model both the second model's figure is
        # tagged so renderings and export filenames stay distinct.
        key = (name, model)
        if key not in built:
            tag = name if len(models) == 1 else f"{name}[{model}]"
            built[key] = timed(
                tag,
                lambda: FIGS[name](args.repeats, model, args.plan),
            )
            if len(models) > 1 and model != models[0]:
                built[key].figure += f"-{model}"
        return built[key]

    for target in targets:
        if target == "table1":
            print(timed(target, render_table1))
        elif target == "headline":
            for m in models:
                if len(models) > 1:
                    print(f"[{m}]")
                print(render_speedups(headline_speedups(
                    figure("fig7a", m), figure("fig7b", m),
                    figure("fig7c", m),
                )))
        else:
            for m in models:
                fig = figure(target, m)
                print(render_figure(fig))
                if args.ascii:
                    print()
                    print(render_ascii_chart(fig))
                if args.out:
                    for path in write_figure(fig, args.out):
                        print(f"  wrote {path}")
        print()
    total = sum(wall_clock.values())
    print(
        "wall-clock: "
        + ", ".join(f"{k} {v:.3f}s" for k, v in wall_clock.items())
        + f" (total {total:.3f}s)"
    )
    if args.out:
        path = write_json(
            {
                "targets": dict(sorted(wall_clock.items())),
                "total_seconds": total,
                "execute_mode": "cycles",
                "timing_model": args.model or "serial",
                "program_cache": True,
            },
            os.path.join(args.out, "BENCH_sim_throughput.json"),
        )
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
