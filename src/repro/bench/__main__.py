"""Command-line figure regeneration.

Usage::

    python -m repro.bench table1
    python -m repro.bench fig7a fig7b fig7c
    python -m repro.bench fig8a --out results/
    python -m repro.bench all --out results/ --repeats 10

Prints each table/figure as text and, with ``--out``, also writes
CSV/JSON series files.
"""

from __future__ import annotations

import argparse
import sys

from . import (
    fig7a,
    fig7b,
    fig7c,
    fig8,
    headline_speedups,
    render_figure,
    render_speedups,
    render_table1,
)
from .ascii_chart import render_ascii_chart
from .export import write_figure
from .report import render_config
from ..config import ASCEND910

FIGS = {
    "fig7a": lambda repeats: fig7a(repeats=repeats),
    "fig7b": lambda repeats: fig7b(repeats=repeats),
    "fig7c": lambda repeats: fig7c(repeats=repeats),
    "fig8a": lambda repeats: fig8(1, repeats=repeats),
    "fig8b": lambda repeats: fig8(2, repeats=repeats),
    "fig8c": lambda repeats: fig8(3, repeats=repeats),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated Ascend 910.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=[*FIGS, "table1", "headline", "all"],
        help="which artifacts to regenerate",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for CSV/JSON exports (figures only)",
    )
    parser.add_argument(
        "--ascii", action="store_true",
        help="additionally draw each figure as an ASCII bar chart",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="measurement repeats (the paper used 10; the simulator is "
        "deterministic, so 1 is exact)",
    )
    args = parser.parse_args(argv)

    targets = list(args.targets)
    if "all" in targets:
        targets = ["table1", *FIGS, "headline"]

    print(render_config(ASCEND910))
    print()
    built = {}
    for target in targets:
        if target == "table1":
            print(render_table1())
        elif target == "headline":
            for name in ("fig7a", "fig7b", "fig7c"):
                if name not in built:
                    built[name] = FIGS[name](args.repeats)
            print(render_speedups(headline_speedups(
                built["fig7a"], built["fig7b"], built["fig7c"]
            )))
        else:
            fig = built.get(target) or FIGS[target](args.repeats)
            built[target] = fig
            print(render_figure(fig))
            if args.ascii:
                print()
                print(render_ascii_chart(fig))
            if args.out:
                for path in write_figure(fig, args.out):
                    print(f"  wrote {path}")
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
