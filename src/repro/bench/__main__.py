"""Command-line figure regeneration.

Usage::

    python -m repro.bench table1
    python -m repro.bench fig7a fig7b fig7c
    python -m repro.bench fig8a --out results/
    python -m repro.bench all --out results/ --repeats 10

Prints each table/figure as text and, with ``--out``, also writes
CSV/JSON series files.
"""

from __future__ import annotations

import argparse
import os
import sys
import time

from . import (
    fig7a,
    fig7b,
    fig7c,
    fig8,
    headline_speedups,
    render_figure,
    render_speedups,
    render_table1,
)
from .ascii_chart import render_ascii_chart
from .export import write_figure, write_json
from .report import render_config
from ..config import ASCEND910

FIGS = {
    "fig7a": lambda repeats, model: fig7a(repeats=repeats, model=model),
    "fig7b": lambda repeats, model: fig7b(repeats=repeats, model=model),
    "fig7c": lambda repeats, model: fig7c(repeats=repeats, model=model),
    "fig8a": lambda repeats, model: fig8(1, repeats=repeats, model=model),
    "fig8b": lambda repeats, model: fig8(2, repeats=repeats, model=model),
    "fig8c": lambda repeats, model: fig8(3, repeats=repeats, model=model),
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Regenerate the paper's tables and figures on the "
        "simulated Ascend 910.",
    )
    parser.add_argument(
        "targets",
        nargs="+",
        choices=[*FIGS, "table1", "headline", "all"],
        help="which artifacts to regenerate",
    )
    parser.add_argument(
        "--out", default=None,
        help="directory for CSV/JSON exports (figures only)",
    )
    parser.add_argument(
        "--ascii", action="store_true",
        help="additionally draw each figure as an ASCII bar chart",
    )
    parser.add_argument(
        "--repeats", type=int, default=1,
        help="measurement repeats (the paper used 10; the simulator is "
        "deterministic, so 1 is exact)",
    )
    parser.add_argument(
        "--model", choices=("serial", "pipelined"), default="serial",
        help="timing model: 'serial' (default) reproduces the paper's "
        "in-order cycle counts; 'pipelined' reports scoreboard "
        "makespans with cross-unit overlap",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error(
            f"--repeats must be a positive integer, got {args.repeats}"
        )
    if args.out is not None:
        # Fail fast with a clear message on degenerate export paths
        # (empty string, an existing file, an uncreatable directory)
        # instead of crashing mid-run after the sweeps already ran.
        if not args.out.strip():
            parser.error("--out must be a non-empty directory path")
        if os.path.exists(args.out) and not os.path.isdir(args.out):
            parser.error(
                f"--out {args.out!r} exists and is not a directory"
            )
        try:
            os.makedirs(args.out, exist_ok=True)
        except OSError as exc:
            parser.error(f"--out {args.out!r} is not creatable: {exc}")

    targets = list(args.targets)
    if "all" in targets:
        targets = ["table1", *FIGS, "headline"]

    print(render_config(ASCEND910))
    print()
    built = {}
    wall_clock: dict[str, float] = {}

    def timed(name: str, fn):
        t0 = time.perf_counter()
        result = fn()
        wall_clock[name] = wall_clock.get(name, 0.0) + (
            time.perf_counter() - t0
        )
        return result

    for target in targets:
        if target == "table1":
            print(timed(target, render_table1))
        elif target == "headline":
            for name in ("fig7a", "fig7b", "fig7c"):
                if name not in built:
                    built[name] = timed(
                        name,
                        lambda n=name: FIGS[n](args.repeats, args.model),
                    )
            print(render_speedups(headline_speedups(
                built["fig7a"], built["fig7b"], built["fig7c"]
            )))
        else:
            # NB: membership, not truthiness -- a figure object is held
            # even if it were ever falsy, so repeated targets never
            # re-run the sweep.
            if target not in built:
                built[target] = timed(
                    target,
                    lambda t=target: FIGS[t](args.repeats, args.model),
                )
            fig = built[target]
            print(render_figure(fig))
            if args.ascii:
                print()
                print(render_ascii_chart(fig))
            if args.out:
                for path in write_figure(fig, args.out):
                    print(f"  wrote {path}")
        print()
    total = sum(wall_clock.values())
    print(
        "wall-clock: "
        + ", ".join(f"{k} {v:.3f}s" for k, v in wall_clock.items())
        + f" (total {total:.3f}s)"
    )
    if args.out:
        path = write_json(
            {
                "targets": dict(sorted(wall_clock.items())),
                "total_seconds": total,
                "execute_mode": "cycles",
                "timing_model": args.model,
                "program_cache": True,
            },
            os.path.join(args.out, "BENCH_sim_throughput.json"),
        )
        print(f"  wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
