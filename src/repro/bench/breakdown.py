"""Cycle breakdowns: where an implementation's time goes.

The paper explains its results through instruction behaviour
(Section V); this module aggregates execution traces into per-unit and
per-opcode cycle tables so the explanation can be *read off* a run:
the standard MaxPool spends nearly everything in narrow ``vmax``
issues, the Im2col one splits between the SCU load and wide vector
work.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim import ChipRunResult


@dataclass(frozen=True)
class Breakdown:
    """Aggregated cycles of one operator invocation."""

    by_unit: dict[str, int]
    by_opcode: dict[str, int]
    issues: dict[str, int]
    vector_lane_utilization: float | None

    @property
    def total(self) -> int:
        return sum(self.by_unit.values())

    def fraction(self, unit: str) -> float:
        return self.by_unit.get(unit, 0) / max(1, self.total)


def breakdown(chip_result: ChipRunResult) -> Breakdown:
    """Aggregate all tile traces of a run (requires collect_trace)."""
    by_unit: dict[str, int] = {}
    by_opcode: dict[str, int] = {}
    issues: dict[str, int] = {}
    for tile in chip_result.per_tile:
        for rec in tile.trace.records:
            by_unit[rec.unit] = by_unit.get(rec.unit, 0) + rec.cycles
            by_opcode[rec.opcode] = by_opcode.get(rec.opcode, 0) + rec.cycles
            issues[rec.opcode] = issues.get(rec.opcode, 0) + 1
    return Breakdown(
        by_unit=by_unit,
        by_opcode=by_opcode,
        issues=issues,
        vector_lane_utilization=chip_result.vector_lane_utilization,
    )


def render_breakdown(label: str, b: Breakdown) -> str:
    """A text table of one breakdown."""
    lines = [f"{label}: {b.total} instruction cycles"]
    for unit, cycles in sorted(b.by_unit.items(), key=lambda kv: -kv[1]):
        lines.append(f"  unit {unit:<8s} {cycles:>10d} cy  ({cycles / b.total:5.1%})")
    lines.append("  top opcodes:")
    for op, cycles in sorted(b.by_opcode.items(), key=lambda kv: -kv[1])[:6]:
        lines.append(
            f"    {op:<12s} {cycles:>10d} cy  {b.issues[op]:>7d} issues"
        )
    if b.vector_lane_utilization is not None:
        lines.append(
            f"  vector lane utilization {b.vector_lane_utilization:5.1%}"
        )
    return "\n".join(lines)


def compare_breakdowns(
    labels_and_results: list[tuple[str, ChipRunResult]]
) -> str:
    """Side-by-side text report for several implementations."""
    return "\n\n".join(
        render_breakdown(label, breakdown(res))
        for label, res in labels_and_results
    )
