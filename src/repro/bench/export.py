"""Export benchmark series to CSV / JSON for external plotting.

The paper's figures are line charts; these writers emit the exact
series (one row per x value, one column per implementation, plus the
95% CI half-widths) so any plotting tool can regenerate them.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path

from .figures import FigureSeries


def figure_to_rows(fig: FigureSeries) -> list[dict]:
    """One dict per x position with cycle and CI columns per series."""
    rows = []
    for idx, x in enumerate(fig.x):
        row: dict = {fig.x_label: x}
        for impl, ms in fig.series.items():
            row[f"{impl} [cycles]"] = ms[idx].cycles
            row[f"{impl} [ci95]"] = round(ms[idx].ci95, 3)
        rows.append(row)
    return rows


def figure_to_csv(fig: FigureSeries) -> str:
    """Render one figure as CSV text."""
    rows = figure_to_rows(fig)
    buf = io.StringIO()
    writer = csv.DictWriter(buf, fieldnames=list(rows[0].keys()))
    writer.writeheader()
    writer.writerows(rows)
    return buf.getvalue()


def figure_to_json(fig: FigureSeries) -> str:
    """Render one figure as a JSON document with metadata."""
    return json.dumps(
        {
            "figure": fig.figure,
            "title": fig.title,
            "x_label": fig.x_label,
            "x": fig.x,
            "series": {
                impl: {
                    "cycles": [m.cycles for m in ms],
                    "ci95": [m.ci95 for m in ms],
                }
                for impl, ms in fig.series.items()
            },
        },
        indent=2,
    )


def write_json(payload: dict, path: str | Path) -> Path:
    """Write ``payload`` as an indented JSON document, creating parent
    directories; the shared writer behind ``python -m repro.bench``'s
    throughput export and ``python -m repro.validate --json``."""
    path = Path(path)
    if path.parent != Path(""):
        path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n")
    return path


def write_figure(fig: FigureSeries, directory: str | Path) -> list[Path]:
    """Write ``fig<id>.csv`` and ``fig<id>.json`` into ``directory``."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    csv_path = directory / f"fig{fig.figure}.csv"
    json_path = directory / f"fig{fig.figure}.json"
    csv_path.write_text(figure_to_csv(fig))
    json_path.write_text(figure_to_json(fig))
    return [csv_path, json_path]
