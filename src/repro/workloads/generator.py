"""Deterministic workload input generation.

The paper feeds the kernels real CNN activations; statistically they are
dense fp16 values.  We generate standard-normal data from a seeded
generator so every experiment is reproducible bit-for-bit.

:func:`sample_pool_geometry` extends this to *geometries*: a seeded
random pooling workload sampler biased toward the regimes where layout
and relocation bugs hide (max overlap, single-output-row tiles,
asymmetric padding on all four sides, multi-``C1`` channels, batches).
The differential fuzzer in :mod:`repro.validate` draws from it.
"""

from __future__ import annotations

import random

import numpy as np

from ..dtypes import FLOAT16, DType
from ..errors import LayoutError
from ..fractal import nhwc_to_nc1hwc0
from ..ops.spec import PoolSpec


def make_input(
    h: int,
    w: int,
    c: int,
    n: int = 1,
    seed: int = 0,
    dtype: DType = FLOAT16,
) -> np.ndarray:
    """A random ``(N, C1, H, W, C0)`` activation tensor.

    ``c`` is the *logical* channel count (as in Table I); the fractal
    conversion zero-pads it up to a multiple of ``C0``.
    """
    if min(h, w, c, n) <= 0:
        raise LayoutError("input extents must be positive")
    rng = np.random.default_rng(seed)
    nhwc = rng.standard_normal((n, h, w, c)).astype(dtype.np_dtype)
    return nhwc_to_nc1hwc0(nhwc, dtype)


def make_gradient(
    c1: int,
    oh: int,
    ow: int,
    n: int = 1,
    seed: int = 0,
    dtype: DType = FLOAT16,
) -> np.ndarray:
    """A random incoming-gradient tensor ``(N, C1, Oh, Ow, C0)``."""
    if min(c1, oh, ow, n) <= 0:
        raise LayoutError("gradient extents must be positive")
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, c1, oh, ow, dtype.c0)).astype(
        dtype.np_dtype
    )


#: Channel counts the geometry sampler draws from: below / exactly /
#: just above / twice the fractal lane count (C0 = 16), so the fuzzer
#: hits zero-padded lanes, single-C1 and multi-C1 slice offsets.
CHANNEL_CHOICES: tuple[int, ...] = (3, 16, 17, 32, 33, 48)


def sample_pool_geometry(
    rng: random.Random,
    max_out: int = 6,
    max_kernel: int = 4,
) -> tuple[int, int, int, int, PoolSpec]:
    """One random pooling workload ``(ih, iw, c, n, spec)``.

    Not uniform: the draw is deliberately biased toward edge regimes --

    * **max overlap** (stride 1, the Figure 8a regime where Im2col
      duplicates the most data) and **zero overlap** (stride = kernel);
    * **padding on all four sides** and independently-drawn asymmetric
      padding (top/bottom/left/right all differ);
    * **single-output-row** images, the smallest legal tile;
    * channel counts around the ``C0 = 16`` fractal boundary and
      batches up to 3, so every ``(N, C1)`` slice-relocation offset is
      exercised.

    Image extents are derived from a target output grid (``1 ..
    max_out`` per axis) plus a sub-stride slack, so every sample is
    legal by construction (output >= 1x1 and padding < kernel) and
    small enough that a full differential run stays fast.
    """
    kh = rng.randint(1, max_kernel)
    kw = rng.randint(1, max_kernel)
    overlap = rng.choices(
        ("max", "none", "general"), weights=(3, 2, 5)
    )[0]
    if overlap == "max":
        sh = sw = 1
    elif overlap == "none":
        sh, sw = kh, kw
    else:
        sh = rng.randint(1, kh + 1)
        sw = rng.randint(1, kw + 1)
    pad_mode = rng.choices(("none", "all", "asym"), weights=(4, 3, 3))[0]
    if pad_mode == "none":
        pt = pb = pl = pr = 0
    else:
        # Padding must stay below the kernel extent (PoolSpec invariant).
        if pad_mode == "all":
            kh, kw = max(kh, 2), max(kw, 2)
            low = 1
        else:
            low = 0
        pt = rng.randint(low, kh - 1) if kh > 1 else 0
        pb = rng.randint(low, kh - 1) if kh > 1 else 0
        pl = rng.randint(low, kw - 1) if kw > 1 else 0
        pr = rng.randint(low, kw - 1) if kw > 1 else 0
    spec = PoolSpec(kh=kh, kw=kw, sh=sh, sw=sw, pt=pt, pb=pb, pl=pl, pr=pr)
    # Derive image extents from a target output grid: oh is biased
    # toward 1 (single-output-row tiles); slack adds input rows/columns
    # that no window covers.
    oh = 1 if rng.random() < 0.3 else rng.randint(2, max_out)
    ow = 1 if rng.random() < 0.15 else rng.randint(2, max_out)
    ih = max(1, kh - pt - pb + (oh - 1) * sh + rng.randint(0, sh - 1))
    iw = max(1, kw - pl - pr + (ow - 1) * sw + rng.randint(0, sw - 1))
    c = rng.choice(CHANNEL_CHOICES)
    n = rng.choices((1, 2, 3), weights=(5, 4, 1))[0]
    return ih, iw, c, n, spec
