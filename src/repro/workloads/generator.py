"""Deterministic workload input generation.

The paper feeds the kernels real CNN activations; statistically they are
dense fp16 values.  We generate standard-normal data from a seeded
generator so every experiment is reproducible bit-for-bit.
"""

from __future__ import annotations

import numpy as np

from ..dtypes import FLOAT16, DType
from ..errors import LayoutError
from ..fractal import nhwc_to_nc1hwc0


def make_input(
    h: int,
    w: int,
    c: int,
    n: int = 1,
    seed: int = 0,
    dtype: DType = FLOAT16,
) -> np.ndarray:
    """A random ``(N, C1, H, W, C0)`` activation tensor.

    ``c`` is the *logical* channel count (as in Table I); the fractal
    conversion zero-pads it up to a multiple of ``C0``.
    """
    if min(h, w, c, n) <= 0:
        raise LayoutError("input extents must be positive")
    rng = np.random.default_rng(seed)
    nhwc = rng.standard_normal((n, h, w, c)).astype(dtype.np_dtype)
    return nhwc_to_nc1hwc0(nhwc, dtype)


def make_gradient(
    c1: int,
    oh: int,
    ow: int,
    n: int = 1,
    seed: int = 0,
    dtype: DType = FLOAT16,
) -> np.ndarray:
    """A random incoming-gradient tensor ``(N, C1, Oh, Ow, C0)``."""
    if min(c1, oh, ow, n) <= 0:
        raise LayoutError("gradient extents must be positive")
    rng = np.random.default_rng(seed)
    return rng.standard_normal((n, c1, oh, ow, dtype.c0)).astype(
        dtype.np_dtype
    )
