"""MaxPool layer shapes of common CNNs -- the paper's Table I.

Input sizes are in the ``HWC`` layout as gathered from Keras by the
authors.  "All configurations use a kernel size of (3, 3) and a stride
of (2, 2), except for VGG16, which has a kernel size and stride of
(2, 2)" (Section VI-A).  The three bold InceptionV3 configurations are
the ones Figure 7 evaluates; they use no padding, while the other CNNs
would require it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError
from ..ops.spec import PoolSpec


@dataclass(frozen=True)
class LayerConfig:
    """One MaxPool layer: input shape (HWC) and pooling parameters."""

    cnn: str
    index: int
    h: int
    w: int
    c: int
    spec: PoolSpec
    #: Whether the paper's Figure 7 evaluates this configuration.
    evaluated: bool = False

    @property
    def hwc(self) -> tuple[int, int, int]:
        return (self.h, self.w, self.c)

    @property
    def label(self) -> str:
        return f"{self.cnn} input {self.index}: ({self.h},{self.w},{self.c})"

    def out_hw(self) -> tuple[int, int]:
        return self.spec.out_hw(self.h, self.w)


_K3S2 = PoolSpec.square(kernel=3, stride=2)
# The non-InceptionV3 CNNs need "same"-style padding for these layers;
# the paper notes padding "is also possible ... during the Im2Col load".
_K3S2_PAD = PoolSpec(kh=3, kw=3, sh=2, sw=2, pt=0, pb=1, pl=0, pr=1)
_K2S2 = PoolSpec.square(kernel=2, stride=2)

#: Table I, row by row.
CNN_MAXPOOL_LAYERS: dict[str, tuple[LayerConfig, ...]] = {
    "InceptionV3": (
        LayerConfig("InceptionV3", 1, 147, 147, 64, _K3S2, evaluated=True),
        LayerConfig("InceptionV3", 2, 71, 71, 192, _K3S2, evaluated=True),
        LayerConfig("InceptionV3", 3, 35, 35, 288, _K3S2, evaluated=True),
        LayerConfig("InceptionV3", 4, 17, 17, 768, _K3S2),
    ),
    "Xception": (
        LayerConfig("Xception", 1, 147, 147, 128, _K3S2_PAD),
        LayerConfig("Xception", 2, 74, 74, 256, _K3S2_PAD),
        LayerConfig("Xception", 3, 37, 37, 728, _K3S2_PAD),
        LayerConfig("Xception", 4, 19, 19, 1024, _K3S2_PAD),
    ),
    "Resnet50": (
        LayerConfig("Resnet50", 1, 112, 112, 64, _K3S2_PAD),
    ),
    "VGG16": (
        LayerConfig("VGG16", 1, 224, 224, 64, _K2S2),
        LayerConfig("VGG16", 2, 112, 112, 128, _K2S2),
        LayerConfig("VGG16", 3, 56, 56, 256, _K2S2),
        LayerConfig("VGG16", 4, 28, 28, 512, _K2S2),
    ),
}

#: The three InceptionV3 configurations Figure 7 evaluates, ordered by
#: increasing network depth (decreasing H*W).
INCEPTION_V3_EVAL: tuple[LayerConfig, ...] = tuple(
    l for l in CNN_MAXPOOL_LAYERS["InceptionV3"] if l.evaluated
)


def layers_of(cnn: str) -> tuple[LayerConfig, ...]:
    """All Table I layers of one CNN."""
    try:
        return CNN_MAXPOOL_LAYERS[cnn]
    except KeyError:
        raise ReproError(
            f"unknown CNN {cnn!r}; Table I lists "
            f"{sorted(CNN_MAXPOOL_LAYERS)}"
        ) from None


def evaluated_layers() -> tuple[LayerConfig, ...]:
    """The configurations the paper's Figure 7 measures."""
    return INCEPTION_V3_EVAL
