"""CNN pooling workloads (Table I of the paper) and input generation."""

from .cnn_configs import (
    CNN_MAXPOOL_LAYERS,
    INCEPTION_V3_EVAL,
    LayerConfig,
    layers_of,
    evaluated_layers,
)
from .generator import (
    CHANNEL_CHOICES,
    make_input,
    make_gradient,
    sample_pool_geometry,
)

__all__ = [
    "CHANNEL_CHOICES",
    "sample_pool_geometry",
    "CNN_MAXPOOL_LAYERS",
    "INCEPTION_V3_EVAL",
    "LayerConfig",
    "layers_of",
    "evaluated_layers",
    "make_input",
    "make_gradient",
]
