"""The kernel builder.

One :class:`KernelBuilder` builds one tile program: it owns a
:class:`~repro.isa.program.Program`, one allocator per scratch-pad
buffer (capacity-checked against the chip configuration), and helpers
that expand high-level operations into hardware-legal instruction
sequences (repeat chunking at 255, masked tails at 128 lanes).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import ChipConfig
from ..dtypes import FRACTAL_ROWS, FLOAT16, DType
from ..errors import IsaError
from ..isa.mask import Mask
from ..isa.operand import MemRef, VectorOperand
from ..isa.program import Program
from ..isa.scu import Col2ImStore, DataMove, Im2ColLoad, Im2ColParams
from ..isa.vector import VectorDup
from ..sim.buffers import Allocator


@dataclass
class KernelBuilder:
    """Builds one tile's instruction stream."""

    config: ChipConfig
    dtype: DType = FLOAT16
    name: str = "kernel"
    program: Program = field(init=False)
    allocators: dict[str, Allocator] = field(init=False)

    def __post_init__(self) -> None:
        self.program = Program(self.name)
        self.allocators = {
            name: Allocator(spec, self.dtype)
            for name, spec in self.config.buffer_specs().items()
        }

    # -- allocation ------------------------------------------------------
    def alloc(self, buffer: str, size_elems: int, name: str = "") -> MemRef:
        """Reserve ``size_elems`` elements in a scratch-pad buffer.

        Every allocation is also recorded in the program's
        ``allocations`` manifest so the memory sanitizer (and footprint
        tests) can audit, at execution time, which bytes of each
        scratch-pad the kernel declared live.
        """
        ref = self.allocators[buffer].alloc(size_elems, name)
        self.program.allocations[buffer] = self.allocators[
            buffer
        ].live_regions()
        return ref

    def ub_high_water(self) -> int:
        return self.allocators["UB"].high_water_bytes

    def l1_high_water(self) -> int:
        return self.allocators["L1"].high_water_bytes

    # -- data movement ----------------------------------------------------
    def dma(
        self,
        src: MemRef,
        dst: MemRef,
        channel: str = "gm",
        accumulate: bool = False,
    ) -> None:
        """One contiguous transfer (global <-> scratch-pad or local)."""
        self.program.emit(DataMove(src, dst, channel, accumulate))

    def dma_rows(
        self,
        src: MemRef,
        dst: MemRef,
        rows: int,
        src_row_elems: int,
        dst_row_elems: int,
        copy_elems: int,
        channel: str = "gm",
        accumulate: bool = False,
    ) -> None:
        """Row-strided transfer: ``rows`` chunks of ``copy_elems``.

        Used to deposit an unpadded image into the interior of a
        zero-filled padded region (one DMA per row, as the real MTE
        would issue for a 2-D transfer descriptor).
        """
        if copy_elems > min(src_row_elems, dst_row_elems):
            raise IsaError("dma_rows copy length exceeds a row")
        for r in range(rows):
            self.program.emit(
                DataMove(
                    src.slice(r * src_row_elems, copy_elems),
                    dst.slice(r * dst_row_elems, copy_elems),
                    channel,
                    accumulate,
                )
            )
        if rows > 1:
            self.program.scalar_loop_trips += rows

    # -- vector fill -------------------------------------------------------
    def dup(self, region: MemRef, value: float) -> None:
        """Fill a contiguous region with ``value`` (chunked vector_dup)."""
        lpr = self.dtype.lanes_per_repeat
        max_rep = self.config.max_repeat
        full, tail = divmod(region.size, lpr)
        done = 0
        emitted = 0
        while done < full:
            rep = min(max_rep, full - done)
            self.program.emit(
                VectorDup(
                    VectorOperand(region.slice(done * lpr, rep * lpr)),
                    value,
                    Mask.full(),
                    rep,
                )
            )
            emitted += 1
            done += rep
        if tail:
            self.program.emit(
                VectorDup(
                    VectorOperand(region.slice(full * lpr, tail)),
                    value,
                    Mask.for_elements(tail, self.dtype),
                    1,
                )
            )
            emitted += 1
        if emitted > 1:
            self.program.scalar_loop_trips += emitted

    # -- the custom intrinsics ---------------------------------------------
    def im2col_planes(
        self,
        src: MemRef,
        dst: MemRef,
        params: Im2ColParams,
        c1: int = 0,
        pad_value: float = 0.0,
    ) -> int:
        """The Im2Col custom intrinsic (Section VI).

        Issues one repeat-mode-1 ``Im2Col`` per kernel offset
        ``(xk, yk)`` (chunked at the hardware repeat limit), loading the
        full patch grid into ``Kh*Kw`` planes of ``plane_rows() * C0``
        elements laid out consecutively at ``dst``.  Returns the plane
        stride in elements.
        """
        c0 = self.dtype.c0
        plane_elems = params.plane_rows() * c0
        needed = params.kh * params.kw * plane_elems
        if dst.size < needed:
            raise IsaError(
                f"im2col destination holds {dst.size} elements, need "
                f"{needed}"
            )
        fractals = params.fractals_per_plane
        max_rep = self.config.max_repeat
        emitted = 0
        for xk in range(params.kh):
            for yk in range(params.kw):
                plane_idx = xk * params.kw + yk
                done = 0
                while done < fractals:
                    rep = min(max_rep, fractals - done)
                    self.program.emit(
                        Im2ColLoad(
                            src=src,
                            dst=dst.slice(
                                plane_idx * plane_elems
                                + done * FRACTAL_ROWS * c0,
                                rep * FRACTAL_ROWS * c0,
                            ),
                            params=params,
                            c1=c1,
                            xk=xk,
                            yk=yk,
                            first_patch=done * FRACTAL_ROWS,
                            repeat=rep,
                            repeat_mode=1,
                            pad_value=pad_value,
                        )
                    )
                    emitted += 1
                    done += rep
        if emitted > 1:
            self.program.scalar_loop_trips += emitted
        return plane_elems

    def col2im_merge(
        self,
        src: MemRef,
        dst: MemRef,
        params: Im2ColParams,
        c1: int = 0,
    ) -> None:
        """The Col2Im custom intrinsic: merge ``Kh*Kw`` planes of
        fractals into the (zero-initialised) image at ``dst``.

        ``src`` holds planes in the same layout :meth:`im2col_planes`
        produces.  One ``Col2Im`` issue per kernel offset, repeat
        mode 1, chunked at the hardware repeat limit (Section V-B:
        "A Col2Im instruction needs to be issued Kh*Kw times to
        complete the merge step of a tile").
        """
        c0 = self.dtype.c0
        plane_elems = params.plane_rows() * c0
        fractals = params.fractals_per_plane
        max_rep = self.config.max_repeat
        emitted = 0
        for xk in range(params.kh):
            for yk in range(params.kw):
                plane_idx = xk * params.kw + yk
                done = 0
                while done < fractals:
                    rep = min(max_rep, fractals - done)
                    self.program.emit(
                        Col2ImStore(
                            src=src.slice(
                                plane_idx * plane_elems
                                + done * FRACTAL_ROWS * c0,
                                rep * FRACTAL_ROWS * c0,
                            ),
                            dst=dst,
                            params=params,
                            c1=c1,
                            xk=xk,
                            yk=yk,
                            first_patch=done * FRACTAL_ROWS,
                            repeat=rep,
                        )
                    )
                    emitted += 1
                    done += rep
        if emitted > 1:
            self.program.scalar_loop_trips += emitted
