"""TIK-style imperative kernel building.

The paper injects the ``Im2Col`` and ``Col2Im`` instructions into TVM as
*custom intrinsics* declared with ``decl_tensor_intrin``; "instead of
implementing a single instruction call, the custom intrinsics were
defined to issue instructions multiple times" (Section VI).  This
package is the analogue: a :class:`KernelBuilder` that allocates
scratch-pad regions, emits DMA moves, and provides the multi-issue
Im2Col / Col2Im intrinsics, splitting long loops into hardware-legal
repeat chunks.
"""

from .builder import KernelBuilder

__all__ = ["KernelBuilder"]
