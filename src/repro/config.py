"""Chip configuration and instruction cost model.

The defaults describe an Ascend-910-like chip (Section III of the paper):
32 AI Cores, scratch-pad buffer capacities taken from the DaVinci Hot
Chips presentation, and a per-instruction cycle cost model whose
constants were calibrated so the reproduced Figure 7 speedups land in the
paper's reported band (see EXPERIMENTS.md for the calibration record).

The cost model intentionally charges a whole repeat iteration regardless
of how many mask lanes are set: a vector instruction that enables only 16
of 128 lanes wastes 7/8 of the datapath.  This single property is what
makes the paper's standard-vs-Im2col comparison come out the way it does.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace


@dataclass(frozen=True)
class CostModel:
    """Cycle costs of the simulated units.

    All values are in cycles of the 100 MHz on-chip clock the paper's
    hardware counters report.
    """

    #: Fixed cost of issuing any vector/SCU instruction: fetch, decode,
    #: scalar-unit address generation and the synchronisation barrier that
    #: surrounds non-repeated instructions in lowered CCE C loops.
    issue_cycles: int = 4

    #: Cycles per vector repeat iteration (one 256-byte vector).
    vector_repeat_cycles: int = 1

    #: Cycles for the SCU to gather and emit one Im2Col fractal: 16
    #: patch rows scattered across L1 banks, roughly one 32-byte line
    #: every other cycle.  Calibrated against the paper's Figure 7a
    #: speedup (see EXPERIMENTS.md).
    im2col_fractal_cycles: int = 8

    #: Cycles for one Col2Im fractal: gather, add, scatter back within
    #: the Unified Buffer.  Calibrated against Figure 7c.
    col2im_fractal_cycles: int = 7

    #: Fixed latency of a DMA (MTE) transfer between global memory and a
    #: scratch-pad buffer.
    dma_latency_cycles: int = 32

    #: DMA bandwidth in bytes per cycle (global memory <-> L1/UB).
    dma_bytes_per_cycle: int = 128

    #: Bandwidth of on-chip buffer-to-buffer moves (L1 <-> UB plain copy).
    local_bytes_per_cycle: int = 256

    #: Per-iteration cost of a scalar loop that the lowering could not
    #: remove (loop counter update + branch on the Scalar Unit).
    loop_cycles: int = 1

    #: Cube unit: cycles per data-fractal pair multiply-accumulate.
    cube_mmad_cycles: int = 1

    #: One-time cost of launching a tile on an AI Core (block dispatch).
    tile_launch_cycles: int = 64


@dataclass(frozen=True)
class BufferSpec:
    """Capacity and alignment of one scratch-pad buffer."""

    name: str
    capacity_bytes: int
    alignment: int = 32


@dataclass(frozen=True)
class ChipConfig:
    """Static description of the simulated chip.

    The buffer sizes follow the published Ascend 910 AI Core numbers:
    L1 = 1 MiB, L0A = L0B = 64 KiB, L0C = 256 KiB, Unified Buffer =
    256 KiB.  ``num_cores`` is 32 as in the paper's evaluation.
    """

    num_cores: int = 32
    frequency_mhz: int = 100
    cost: CostModel = field(default_factory=CostModel)

    l1_bytes: int = 1024 * 1024
    l0a_bytes: int = 64 * 1024
    l0b_bytes: int = 64 * 1024
    l0c_bytes: int = 256 * 1024
    ub_bytes: int = 256 * 1024

    #: Maximum value of the hardware repeat field on vector and SCU
    #: instructions; larger loops must issue multiple instructions.
    max_repeat: int = 255

    def buffer_specs(self) -> dict[str, BufferSpec]:
        """Scratch-pad buffer table keyed by buffer name."""
        return {
            "L1": BufferSpec("L1", self.l1_bytes),
            "L0A": BufferSpec("L0A", self.l0a_bytes, alignment=512),
            "L0B": BufferSpec("L0B", self.l0b_bytes, alignment=512),
            "L0C": BufferSpec("L0C", self.l0c_bytes, alignment=512),
            "UB": BufferSpec("UB", self.ub_bytes),
        }

    def with_cost(self, **kwargs) -> "ChipConfig":
        """Return a copy with some cost-model constants replaced.

        Used by the ablation benchmarks to sweep calibration constants.
        """
        return replace(self, cost=replace(self.cost, **kwargs))


#: The configuration used throughout the reproduction unless overridden.
ASCEND910 = ChipConfig()

#: A single-core configuration for the Figure 8 experiments, which pin
#: N = C1 = 1 so that only one AI Core is exercised.
ASCEND910_SINGLE_CORE = replace(ASCEND910, num_cores=1)
