"""Self-validation: golden-model checks and differential fuzzing.

Two layers, both exposed as library features and as a CLI
(``python -m repro.validate``):

1. :func:`validate_all` -- the fixed geometry grid (:data:`DEFAULT_GRID`)
   swept over every registered implementation against the pure-NumPy
   golden models.  The grid covers the paper's regimes (overlap / no
   overlap / max overlap / anisotropic / padded) plus multi-``C1``,
   ``batch > 1`` and all-four-sides-padded geometries whose slice
   offsets exercise program relocation.

2. :func:`fuzz` -- a *differential fuzzer*: seeded random geometries
   (:func:`repro.workloads.sample_pool_geometry`, biased toward edge
   regimes) are run through **four execution routes** per registered
   implementation --

   * ``fresh``     -- uncached numeric execution, one lowering per tile;
   * ``relocated`` -- numeric execution through a cold
     :class:`~repro.sim.ProgramCache` (one lowering per unique tile
     geometry, relocated clones per ``(N, C1)`` slice);
   * ``cached``    -- the same cache served warm (every program a hit);
   * ``cycles``    -- the analytic ``execute="cycles"`` fast path;

   plus (unless restricted via ``models``/``--model serial``) a fifth
   ``pipelined`` route running numerically under the scoreboard timing
   model (:mod:`repro.sim.scheduler`), which must produce
   **bit-identical** numeric outputs and a makespan **no larger** than
   the serial model's on every tile.

   All numeric routes must agree **bit-for-bit** with each other;
   MaxPool forward must match the golden model bit-for-bit; AvgPool
   agrees within :data:`_TOL` (fp16 summation regrouping); backward
   passes match bit-for-bit whenever a single summation order exists
   (one tile per slice -- row-chunked accumulate-DMA merges regroup
   fp16 sums by construction, see README "Scope and fidelity").  The
   ``cycles`` route must report the *exact* cycle count and
   per-instruction trace of numeric execution.

   With ``--chaos`` a **sixth route** runs every sampled geometry under
   a seeded :class:`~repro.sim.FaultPlan` (stalls, mid-program core
   crashes, detected scratch-pad bit flips, cycle-budget deadlines)
   through the resilient dispatcher and asserts that whenever recovery
   succeeds the final outputs are **bit-identical** to the fault-free
   run, that the attached :class:`~repro.sim.ResilienceReport` accounts
   the plan, and that recovery overhead never makes the run cheaper
   than the fault-free baseline.  Unrecoverable cases fail loudly and
   are shrunk to a minimal reproducer like any other failure.

   With ``--jit`` an **eighth route** re-runs every sampled geometry
   per timing model through the NumPy JIT (``execute="jit"``,
   :mod:`repro.sim.compile`): the lowered program is compiled into a
   fused batch kernel, memoized in the
   :class:`~repro.sim.ProgramCache`, and shared across relocated
   slice clones.  The route must be **bit-identical** to the
   interpreter (outputs *and* masks), cycle-exact (chip makespan and
   total work unchanged -- the JIT accelerates dispatch, never the
   model), and on a warm second run must serve the kernel from the
   cache (``jit_hits > 0``).  Mismatches shrink to a minimal
   reproducer like any other failure.

   With ``--autotune`` a **ninth route** runs the cost-model autotuner
   (:mod:`repro.plan.autotune`) over each sampled workload (coarse
   chunk grid, first registered variant per op and direction), then
   re-executes the winning :class:`~repro.plan.ExecutionPlan`
   numerically: outputs and masks must be **bit-identical** to the
   default plan's (the search swaps only members of a bit-exact
   equivalence class), the numeric run's cycle count must equal the
   search's cycles-mode prediction exactly (the cost model is
   data-independent), and the winner may never cost more than the
   default-plan baseline.

   With ``--sanitize`` a **seventh route** re-runs every sampled
   geometry per timing model in strict memory-checking mode
   (:mod:`repro.sim.sanitizer`): scratch-pads are poisoned on reset,
   every operand is bounds- and initialization-checked against the
   program's allocation manifest, ``execute()`` side effects are
   shadow-diffed against declared regions, and the pipelined timeline
   is audited for races.  The route must come back *clean* (a
   :class:`~repro.sim.SanitizerReport` attached with zero violations),
   bit-identical to the unsanitized run, and cycle-exact -- the
   sanitizer observes, it never perturbs.  Any
   :class:`~repro.errors.SanitizerError` is a failing check shrunk to
   a minimal reproducer like any other failure.

   With ``--serve-chaos`` a **tenth route** replaces the grid and the
   operator fuzz entirely: a seeded storm of requests with cycled
   fault profiles (clean / worker crash / hung-but-alive stall / tail
   latency / dropped reply / guaranteed deadline miss) is driven
   through a live :class:`~repro.serve.PoolService` with the stall
   watchdog and hedged retries enabled.  Recovered responses must be
   **byte-identical** to executing the chaos-stripped twin request
   in-process, deadline-profile requests must fail with a punctual
   structured :class:`~repro.errors.DeadlineError`, and the
   exactly-once ledger must close: every submission resolves exactly
   once, ``completed + failed == submitted``, and no pending-request
   or in-flight-dispatch residue survives the storm.

   With ``--integrity`` an **eleventh route** (again replacing grid
   and operator fuzz) drives seeded silent-data-corruption storms
   through a :class:`~repro.serve.PoolService` with
   :class:`~repro.serve.IntegrityConfig` active: a clean storm must
   produce zero false positives and byte-identical responses; a
   transit-corruption storm (``chaos_corrupt_payload``) must be fully
   absorbed by service-side fingerprint re-verification (every served
   response still byte-identical, the corrupt slot quarantined); a
   corrupt-core storm (``chaos_corrupt_output``) must be caught by
   dual-execution audits, the corrupt slot convicted via tie-break and
   recorded as a structured :class:`~repro.errors.IntegrityError`; and
   known-answer probes must run clean on a healthy fleet and convict a
   chaos-corrupted probe target between user requests.

Failures are shrunk (binary-reducing image extents, channels and batch)
to a minimal reproducer printed as a ready-to-paste :class:`FuzzCase`::

    python -m repro.validate --seed 0 --cases 200
    python -m repro.validate --impl im2col col2im --json report.json
"""

from __future__ import annotations

import argparse
import random
import sys
import zlib
from dataclasses import dataclass, field
from dataclasses import replace as _dc_replace
from typing import Callable, Sequence

import numpy as np

from .config import ASCEND910, ASCEND910_SINGLE_CORE, ChipConfig
from .dtypes import dtype_of
from .errors import ReproError
from .ops import (
    PoolSpec,
    backward_impl,
    backward_variants,
    forward_impl,
    forward_variants,
    run_backward,
    run_forward,
)
from .ops.base import PoolRunResult
from .ops.reference import (
    avgpool_backward_ref,
    avgpool_forward_ref,
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)
from .sim import BitFlip, Crash, FaultPlan, ProgramCache, RetryPolicy
from .workloads import make_gradient, make_input, sample_pool_geometry

#: Geometry grid: (h, w, c, n, spec) covering the paper's regimes --
#: overlap / no overlap / max overlap / anisotropic / padded -- plus
#: multi-C1, batch>1 and all-four-sides-padded entries whose slice
#: offsets catch relocation bugs the C=16/N=1 grid cannot see.
DEFAULT_GRID: tuple[tuple[int, int, int, int, PoolSpec], ...] = (
    (13, 13, 16, 1, PoolSpec.square(3, 2)),
    (12, 12, 16, 1, PoolSpec.square(2, 2)),
    (12, 12, 16, 1, PoolSpec.square(3, 3)),
    (9, 9, 16, 1, PoolSpec.square(3, 1)),
    (10, 14, 16, 1, PoolSpec(kh=3, kw=2, sh=2, sw=3)),
    (10, 10, 16, 1, PoolSpec(kh=3, kw=3, sh=2, sw=2, pb=1, pr=1)),
    # multi-C1 (padded lanes at C=33), batch>1, and all-four-sides
    # padding: every relocation delta (x/out/mask/grad/dx) is non-zero
    # and distinct across slices.
    (10, 10, 33, 1, PoolSpec.square(3, 2)),
    (9, 9, 16, 2, PoolSpec.square(2, 2)),
    (8, 11, 32, 2, PoolSpec(kh=3, kw=3, sh=2, sw=2, pt=1, pb=1, pl=1, pr=1)),
    (7, 9, 48, 1, PoolSpec(kh=2, kw=3, sh=2, sw=1, pt=1, pb=1, pl=1, pr=2)),
)

#: Tolerance (in float32) for cases with a regrouped fp16 summation.
_TOL = dict(rtol=5e-3, atol=5e-3)

#: Default chip for differential fuzzing: a few cores so the planner
#: row-chunks tiles and deals them round-robin (the regime relocation
#: and cache bugs live in), without the full 32-core tile fan-out.
FUZZ_CHIP: ChipConfig = _dc_replace(ASCEND910, num_cores=4)

#: Timing models exercised by default: the serial baseline (the four
#: classic routes) plus the pipelined scoreboard model, whose numeric
#: outputs must be bit-identical and whose makespan may never exceed
#: the serial one.
DEFAULT_MODELS: tuple[str, ...] = ("serial", "pipelined")


@dataclass(frozen=True)
class CheckResult:
    """One named pass/fail outcome."""

    name: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    """Accumulated check results of one validation or fuzzing run."""

    checks: list[CheckResult] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        """Record one check outcome."""
        self.checks.append(CheckResult(name, passed, detail))

    @property
    def all_passed(self) -> bool:
        """Whether every recorded check passed."""
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        """The failing checks, in recording order."""
        return [c for c in self.checks if not c.passed]

    def render(self, only_failures: bool = False) -> str:
        """Human-readable listing of the checks."""
        lines = [
            f"{len(self.checks)} checks, "
            f"{len(self.failures)} failures"
        ]
        for c in self.checks:
            if only_failures and c.passed:
                continue
            mark = "ok  " if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name} {c.detail}")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable summary (the ``--json`` export payload)."""
        return {
            "checks": len(self.checks),
            "failures": [
                {"name": c.name, "detail": c.detail} for c in self.failures
            ],
            "passed": self.all_passed,
        }


def _close(a: np.ndarray, b: np.ndarray, exact: bool) -> bool:
    if exact:
        return bool(np.array_equal(a, b))
    return bool(np.allclose(
        a.astype(np.float32), b.astype(np.float32), **_TOL
    ))


def _diff_detail(a: np.ndarray | None, b: np.ndarray | None) -> str:
    if a is None or b is None:
        return "missing output" if (a is None) != (b is None) else ""
    if a.shape != b.shape:
        return f"shape {a.shape} vs {b.shape}"
    d = np.abs(a.astype(np.float32) - b.astype(np.float32))
    return f"max|diff|={float(d.max()):.3e}" if d.size else ""


def validate_all(
    config: ChipConfig = ASCEND910_SINGLE_CORE,
    grid: Sequence[tuple[int, int, int, int, PoolSpec]] = DEFAULT_GRID,
    seed: int = 0,
    models: Sequence[str] = DEFAULT_MODELS,
) -> ValidationReport:
    """Run every (implementation, op, geometry) combination and compare
    against the golden models.

    Implementations are discovered through the registry
    (:func:`repro.ops.forward_variants` /
    :func:`repro.ops.backward_variants`), so newly registered variants
    are validated automatically.  With ``"pipelined"`` in ``models``
    (the default) every grid point additionally asserts the scheduler
    invariant: the pipelined makespan never exceeds the serial one.
    """
    check_pipelined = "pipelined" in models
    report = ValidationReport()
    for h, w, c, n, spec in grid:
        x = make_input(h, w, c, n=n, seed=seed)
        label = (
            f"{n}x{h}x{w}x{c}/k{spec.kh}{spec.kw}s{spec.sh}{spec.sw}"
        )
        max_ref = maxpool_forward_ref(x, spec)
        avg_ref = avgpool_forward_ref(x, spec)
        mask_ref = maxpool_argmax_ref(x, spec)
        oh, ow = spec.out_hw(h, w)
        grad = make_gradient(x.shape[1], oh, ow, n=n, seed=seed + 1)

        for name, op, with_mask in forward_variants():
            impl = forward_impl(name, op, with_mask)
            res = run_forward(x, spec, impl, config, collect_trace=False)
            ref = max_ref if op == "max" else avg_ref
            # The X-Y split regroups the fp16 sum (rows then columns).
            exact = op == "max" or name != "xysplit"
            ok = _close(res.output, ref, exact=exact)
            if with_mask:
                ok = ok and res.mask is not None and _close(
                    res.mask, mask_ref, exact=True
                )
            mask_tag = "+mask" if with_mask else ""
            report.add(f"{op}pool/{name}{mask_tag}/{label}", ok)
            if check_pipelined:
                pipe = run_forward(
                    x, spec, impl, config, collect_trace=False,
                    execute="cycles", model="pipelined",
                )
                ok = pipe.cycles <= res.cycles
                report.add(
                    f"{op}pool/{name}{mask_tag}/{label}"
                    "/pipelined-le-serial",
                    ok,
                    "" if ok else f"{pipe.cycles} > {res.cycles}",
                )

        bwd_max_ref = maxpool_backward_ref(mask_ref, grad, spec, h, w)
        bwd_avg_ref = avgpool_backward_ref(grad, spec, h, w)
        for name, op in backward_variants():
            impl = backward_impl(name, op)
            res = run_backward(
                grad, spec, impl, h, w,
                mask=mask_ref if op == "max" else None,
                config=config, collect_trace=False,
            )
            ref = bwd_max_ref if op == "max" else bwd_avg_ref
            # Bit-exact only while a single summation order exists: a
            # row-chunked slice accumulates partial sums via DMA-add,
            # regrouping the fp16 additions at chunk boundaries.
            exact = len(res.tiles) == 1
            report.add(f"{op}pool-bwd/{name}/{label}",
                       _close(res.output, ref, exact=exact))
            if check_pipelined:
                pipe = run_backward(
                    grad, spec, impl, h, w,
                    mask=mask_ref if op == "max" else None,
                    config=config, collect_trace=False,
                    execute="cycles", model="pipelined",
                )
                ok = pipe.cycles <= res.cycles
                report.add(
                    f"{op}pool-bwd/{name}/{label}/pipelined-le-serial",
                    ok,
                    "" if ok else f"{pipe.cycles} > {res.cycles}",
                )
    return report


# ---------------------------------------------------------------------------
# Differential fuzzing.
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class FuzzCase:
    """One random workload: geometry, extents and data seed."""

    ih: int
    iw: int
    c: int
    n: int
    spec: PoolSpec
    seed: int = 0

    @property
    def label(self) -> str:
        """Compact identifier used in check names."""
        s = self.spec
        pad = (
            f"p{s.pt}{s.pb}{s.pl}{s.pr}" if s.has_padding else ""
        )
        return (
            f"{self.n}x{self.ih}x{self.iw}x{self.c}"
            f"/k{s.kh}{s.kw}s{s.sh}{s.sw}{pad}@{self.seed}"
        )

    def reproducer(self) -> str:
        """Ready-to-paste Python snippet reconstructing this case."""
        s = self.spec
        return (
            f"FuzzCase(ih={self.ih}, iw={self.iw}, c={self.c}, "
            f"n={self.n}, seed={self.seed}, spec=PoolSpec(kh={s.kh}, "
            f"kw={s.kw}, sh={s.sh}, sw={s.sw}, pt={s.pt}, pb={s.pb}, "
            f"pl={s.pl}, pr={s.pr}))"
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (the ``--json`` export payload)."""
        s = self.spec
        return {
            "ih": self.ih, "iw": self.iw, "c": self.c, "n": self.n,
            "seed": self.seed,
            "spec": {
                "kh": s.kh, "kw": s.kw, "sh": s.sh, "sw": s.sw,
                "pt": s.pt, "pb": s.pb, "pl": s.pl, "pr": s.pr,
            },
        }


def generate_cases(seed: int, count: int) -> list[FuzzCase]:
    """``count`` seeded random workloads (deterministic per ``seed``)."""
    rng = random.Random(seed)
    cases = []
    for idx in range(count):
        ih, iw, c, n, spec = sample_pool_geometry(rng)
        cases.append(
            FuzzCase(ih=ih, iw=iw, c=c, n=n, spec=spec,
                     seed=seed * 100003 + idx)
        )
    return cases


def _routes(
    run: Callable[..., PoolRunResult],
    models: Sequence[str] = DEFAULT_MODELS,
) -> dict[str, PoolRunResult]:
    """Execute one operator through the differential routes.

    Always the four serial routes; with ``"pipelined"`` in ``models`` a
    fifth numeric route under the scoreboard timing model is added,
    checked for bit-identical outputs and ``makespan <= serial``.
    """
    cache = ProgramCache()
    routes = {
        "fresh": run(cache=None, execute="numeric"),
        "relocated": run(cache=cache, execute="numeric"),
        "cached": run(cache=cache, execute="numeric"),
        "cycles": run(cache=cache, execute="cycles"),
    }
    if "pipelined" in models:
        routes["pipelined"] = run(
            cache=cache, execute="numeric", model="pipelined"
        )
    assert cache.stats.hits > 0, "warm cache route served no hits"
    return routes


def _trace_identical(a: PoolRunResult, b: PoolRunResult) -> str:
    """Empty string if per-tile traces agree exactly, else a detail."""
    if len(a.chip.per_tile) != len(b.chip.per_tile):
        return (
            f"tile count {len(a.chip.per_tile)} vs "
            f"{len(b.chip.per_tile)}"
        )
    for idx, (ra, rb) in enumerate(zip(a.chip.per_tile, b.chip.per_tile)):
        if ra.cycles != rb.cycles:
            return f"tile {idx} cycles {ra.cycles} vs {rb.cycles}"
        if ra.instructions != rb.instructions:
            return (
                f"tile {idx} instructions {ra.instructions} vs "
                f"{rb.instructions}"
            )
        if ra.trace.issue_counts() != rb.trace.issue_counts():
            return f"tile {idx} issue counts differ"
        if ra.trace.cycles_by_unit() != rb.trace.cycles_by_unit():
            return f"tile {idx} per-unit cycles differ"
    return ""


def _check_routes(
    report: ValidationReport,
    prefix: str,
    routes: dict[str, PoolRunResult],
    ref: np.ndarray,
    exact: bool,
    mask_ref: np.ndarray | None = None,
) -> None:
    """Assert the four-route agreement contract for one operator run."""
    fresh = routes["fresh"]
    ok = _close(fresh.output, ref, exact=exact)
    report.add(
        f"{prefix}/fresh-vs-golden", ok,
        "" if ok else _diff_detail(fresh.output, ref),
    )
    if mask_ref is not None:
        ok = fresh.mask is not None and _close(fresh.mask, mask_ref, True)
        report.add(
            f"{prefix}/mask-vs-golden", ok,
            "" if ok else _diff_detail(fresh.mask, mask_ref),
        )
    for route in ("relocated", "cached"):
        res = routes[route]
        ok = (
            res.output is not None
            and np.array_equal(res.output, fresh.output)
            and res.cycles == fresh.cycles
        )
        if mask_ref is not None:
            ok = ok and res.mask is not None and np.array_equal(
                res.mask, fresh.mask
            )
        report.add(
            f"{prefix}/{route}-vs-fresh", ok,
            "" if ok else _diff_detail(res.output, fresh.output),
        )
    cyc = routes["cycles"]
    ok = cyc.output is None and cyc.mask is None
    report.add(f"{prefix}/cycles-no-data", ok)
    ok = (
        cyc.cycles == fresh.cycles
        and cyc.chip.total_work_cycles == fresh.chip.total_work_cycles
    )
    report.add(
        f"{prefix}/cycles-vs-fresh", ok,
        "" if ok else f"cycles {cyc.cycles} vs {fresh.cycles}",
    )
    detail = _trace_identical(cyc, fresh)
    report.add(f"{prefix}/trace-vs-fresh", detail == "", detail)
    pipe = routes.get("pipelined")
    if pipe is not None:
        ok = pipe.output is not None and np.array_equal(
            pipe.output, fresh.output
        )
        if mask_ref is not None:
            ok = ok and pipe.mask is not None and np.array_equal(
                pipe.mask, fresh.mask
            )
        report.add(
            f"{prefix}/pipelined-output-vs-fresh", ok,
            "" if ok else _diff_detail(pipe.output, fresh.output),
        )
        # Scheduler invariant: the scoreboard only moves issue slots
        # *earlier*, so the pipelined makespan may never exceed the
        # serial one -- chip-level and on every individual tile.
        ok = pipe.cycles <= fresh.cycles and all(
            pa.cycles <= pb.cycles
            for pa, pb in zip(pipe.chip.per_tile, fresh.chip.per_tile)
        )
        report.add(
            f"{prefix}/pipelined-makespan-le-serial", ok,
            "" if ok else f"cycles {pipe.cycles} > {fresh.cycles}",
        )


def _chaos_seed(prefix: str, model: str) -> int:
    """Deterministic per-(operator, case, model) chaos seed.

    ``zlib.crc32`` rather than ``hash()``: stable across processes and
    immune to ``PYTHONHASHSEED``, so two runs with the same ``--seed``
    build identical :class:`~repro.sim.FaultPlan` objects.
    """
    return zlib.crc32(f"{prefix}/{model}".encode())


def _plan_must_fail(plan: FaultPlan) -> bool:
    """Whether ``plan`` is guaranteed to fail at least one attempt.

    Core-bound faults may never meet their core and ``Deadline``
    budgets may exceed the tile's makespan, so only unbound first-attempt
    crashes and detected bit flips *guarantee* a retry.
    """
    return any(
        isinstance(f, (Crash, BitFlip))
        and (not isinstance(f, BitFlip) or f.detected)
        and f.core is None
        and (f.attempts is None or 0 in f.attempts)
        for f in plan.faults
    )


def _check_chaos(
    report: ValidationReport,
    prefix: str,
    run: Callable[..., PoolRunResult],
    routes: dict[str, PoolRunResult],
    models: Sequence[str],
    config: ChipConfig,
) -> None:
    """The chaos route: re-run under a seeded fault plan per model.

    Asserts the resilience contract -- recovered outputs bit-identical
    to the fault-free run, the :class:`~repro.sim.ResilienceReport`
    attached and accounting the plan, recovery engaged whenever the
    plan contains a must-fail fault, and the chip never *cheaper* than
    the fault-free baseline.  Unrecoverable runs (raised
    :class:`~repro.errors.ReproError`) are recorded as failing checks,
    so the fuzzer shrinks them like any numeric mismatch.
    """
    for m in models:
        base = routes["pipelined"] if m == "pipelined" else routes["fresh"]
        plan = FaultPlan.generate(
            _chaos_seed(prefix, m),
            num_tiles=len(base.chip.per_tile),
            num_cores=config.num_cores,
        )
        tag = f"{prefix}/chaos-{m}"
        try:
            res = run(
                cache=ProgramCache(), execute="numeric", model=m,
                faults=plan, retry=RetryPolicy(),
            )
        except ReproError as exc:
            report.add(
                f"{tag}/recovered", False,
                f"unrecoverable: {type(exc).__name__}: {exc}",
            )
            continue
        ok = res.output is not None and np.array_equal(
            res.output, base.output
        )
        if base.mask is not None:
            ok = ok and res.mask is not None and np.array_equal(
                res.mask, base.mask
            )
        report.add(
            f"{tag}/output-vs-fault-free", ok,
            "" if ok else _diff_detail(res.output, base.output),
        )
        rep = res.resilience
        ok = rep is not None and rep.plan_faults == len(plan.faults)
        report.add(
            f"{tag}/report-attached", ok,
            "" if ok else f"resilience={rep!r}",
        )
        if rep is None:
            continue
        if plan.faults:
            must_fail = _plan_must_fail(plan)
            ok = rep.retries > 0 if must_fail else True
            report.add(
                f"{tag}/recovery-engaged", ok,
                "" if ok else (
                    f"plan has must-fail faults but report shows "
                    f"{rep.retries} retries / {len(rep.failures)} failures"
                ),
            )
            ok = (
                res.chip.total_work_cycles >= base.chip.total_work_cycles
                and rep.extra_cycles >= 0
            )
            report.add(
                f"{tag}/overhead-accounted", ok,
                "" if ok else (
                    f"work {res.chip.total_work_cycles} < fault-free "
                    f"{base.chip.total_work_cycles}"
                ),
            )
        else:
            # Empty plan: the resilient path must be a cycle-exact
            # no-op relative to the fault-free run.
            ok = (
                rep.clean
                and res.cycles == base.cycles
                and res.chip.total_work_cycles
                == base.chip.total_work_cycles
            )
            report.add(
                f"{tag}/empty-plan-identical", ok,
                "" if ok else (
                    f"cycles {res.cycles} vs {base.cycles}, clean="
                    f"{rep.clean}"
                ),
            )


def _check_sanitize(
    report: ValidationReport,
    prefix: str,
    run: Callable[..., PoolRunResult],
    routes: dict[str, PoolRunResult],
    models: Sequence[str],
) -> None:
    """The sanitize route: re-run numerically in strict mode per model.

    Asserts the memory-safety contract: the run completes without a
    :class:`~repro.errors.SanitizerError`, the merged
    :class:`~repro.sim.SanitizerReport` is attached and *clean*, the
    outputs are bit-identical to the unsanitized baseline and the cycle
    count is unchanged -- the sanitizer observes execution, it never
    perturbs it.  A raised violation is recorded as a failing check
    (its message names the program, instruction index and byte range),
    so the fuzzer shrinks it like any numeric mismatch.
    """
    for m in models:
        base = routes["pipelined"] if m == "pipelined" else routes["fresh"]
        tag = f"{prefix}/sanitize-{m}"
        try:
            res = run(
                cache=ProgramCache(), execute="numeric", model=m,
                sanitize=True,
            )
        except ReproError as exc:
            report.add(
                f"{tag}/clean", False,
                f"{type(exc).__name__}: {exc}",
            )
            continue
        rep = res.sanitizer
        ok = rep is not None and rep.clean
        report.add(
            f"{tag}/clean", ok,
            "" if ok else (
                "no report attached" if rep is None else
                "; ".join(v.message for v in rep.violations[:3])
            ),
        )
        ok = res.output is not None and np.array_equal(
            res.output, base.output
        )
        if base.mask is not None:
            ok = ok and res.mask is not None and np.array_equal(
                res.mask, base.mask
            )
        report.add(
            f"{tag}/output-vs-unsanitized", ok,
            "" if ok else _diff_detail(res.output, base.output),
        )
        ok = (
            res.cycles == base.cycles
            and res.chip.total_work_cycles == base.chip.total_work_cycles
        )
        report.add(
            f"{tag}/cycles-unperturbed", ok,
            "" if ok else f"cycles {res.cycles} vs {base.cycles}",
        )
        if rep is not None:
            ok = rep.checked_instructions > 0 and bool(rep.coverage)
            report.add(
                f"{tag}/report-accounts-work", ok,
                "" if ok else (
                    f"checked={rep.checked_instructions}, "
                    f"coverage buffers={sorted(rep.coverage)}"
                ),
            )


def _check_jit(
    report: ValidationReport,
    prefix: str,
    run: Callable[..., PoolRunResult],
    routes: dict[str, PoolRunResult],
    models: Sequence[str],
) -> None:
    """The JIT route: re-run through compiled batch kernels per model.

    Asserts the compilation contract: ``execute="jit"`` produces
    **bit-identical** outputs (and masks) to the interpreter, the chip
    makespan and total work cycles are unchanged (the JIT accelerates
    dispatch, never the timing model), and a warm second run through
    the same :class:`~repro.sim.ProgramCache` serves the memoized
    kernel (``stats.jit_hits > 0``) with identical results.  A raised
    error is recorded as a failing check, so the fuzzer shrinks it
    like any numeric mismatch.
    """
    for m in models:
        base = routes["pipelined"] if m == "pipelined" else routes["fresh"]
        tag = f"{prefix}/jit-{m}"
        cache = ProgramCache()
        try:
            res = run(cache=cache, execute="jit", model=m)
            warm = run(cache=cache, execute="jit", model=m)
        except ReproError as exc:
            report.add(
                f"{tag}/bit-identical", False,
                f"{type(exc).__name__}: {exc}",
            )
            continue
        ok = res.output is not None and np.array_equal(
            res.output, base.output
        )
        if base.mask is not None:
            ok = ok and res.mask is not None and np.array_equal(
                res.mask, base.mask
            )
        report.add(
            f"{tag}/bit-identical", ok,
            "" if ok else _diff_detail(res.output, base.output),
        )
        ok = (
            res.cycles == base.cycles
            and res.chip.total_work_cycles == base.chip.total_work_cycles
        )
        report.add(
            f"{tag}/cycles-unchanged", ok,
            "" if ok else f"cycles {res.cycles} vs {base.cycles}",
        )
        ok = (
            cache.stats.jit_hits > 0
            and warm.output is not None
            and np.array_equal(warm.output, res.output)
            and warm.cycles == res.cycles
        )
        report.add(
            f"{tag}/warm-cache-served", ok,
            "" if ok else (
                f"jit_hits={cache.stats.jit_hits}, "
                f"jit_misses={cache.stats.jit_misses}"
            ),
        )


def _check_autotune(
    report: ValidationReport,
    prefix: str,
    run: Callable[..., PoolRunResult],
    routes: dict[str, PoolRunResult],
    workload,
    config: ChipConfig,
    models: Sequence[str],
) -> None:
    """The autotune route: cost-model search, then numeric re-execution.

    Asserts the autotuner contract (:mod:`repro.plan.autotune`): the
    coarse-grid search finds a winning :class:`~repro.plan.ExecutionPlan`
    no more expensive than the default-plan baseline; re-running that
    plan *numerically* produces outputs (and masks) **bit-identical**
    to the default plan's ``fresh`` route -- the search only swaps
    members of a bit-exact equivalence class -- and reports *exactly*
    the cycle count the cycles-mode search predicted (the cost model is
    data-independent).  A raised error is recorded as a failing check,
    so the fuzzer shrinks it like any numeric mismatch.
    """
    from .plan import search

    tag = f"{prefix}/autotune"
    try:
        result = search(workload, config, models=models, chunks="coarse")
        res = run(
            cache=ProgramCache(), execute="numeric", plan=result.best
        )
    except ReproError as exc:
        report.add(
            f"{tag}/output-vs-default", False,
            f"{type(exc).__name__}: {exc}",
        )
        return
    fresh = routes["fresh"]
    ok = res.output is not None and np.array_equal(
        res.output, fresh.output
    )
    if fresh.mask is not None:
        ok = ok and res.mask is not None and np.array_equal(
            res.mask, fresh.mask
        )
    report.add(
        f"{tag}/output-vs-default", ok,
        "" if ok else _diff_detail(res.output, fresh.output),
    )
    ok = res.cycles == result.best_cycles
    report.add(
        f"{tag}/cycles-as-predicted", ok,
        "" if ok else f"numeric {res.cycles} vs predicted "
        f"{result.best_cycles}",
    )
    ok = result.best_cycles <= result.baseline_cycles
    report.add(
        f"{tag}/no-regression", ok,
        "" if ok else f"best {result.best_cycles} > baseline "
        f"{result.baseline_cycles}",
    )


def check_case(
    case: FuzzCase,
    config: ChipConfig = FUZZ_CHIP,
    impls: Sequence[str] | None = None,
    report: ValidationReport | None = None,
    models: Sequence[str] = DEFAULT_MODELS,
    chaos: bool = False,
    sanitize: bool = False,
    jit: bool = False,
    autotune: bool = False,
) -> ValidationReport:
    """Differentially validate one workload across every registered
    implementation and all execution routes.

    Returns the (possibly supplied) report; check names are prefixed
    with the case label so one report can hold many cases.  ``models``
    selects the timing models: ``"pipelined"`` adds the scoreboard
    route with its bit-identical-output and makespan invariants.
    ``chaos=True`` adds the sixth route: every operator re-runs under a
    seeded :class:`~repro.sim.FaultPlan` through the resilient
    dispatcher and must recover to bit-identical outputs (see
    :func:`_check_chaos`).  ``sanitize=True`` adds the seventh route:
    every operator re-runs per model in strict memory-checking mode
    and must come back clean, bit-identical and cycle-exact (see
    :func:`_check_sanitize`).  ``jit=True`` adds the eighth route:
    every operator re-runs per model through compiled batch kernels
    (``execute="jit"``) and must be bit-identical and cycle-exact,
    with the warm cache serving the memoized kernel (see
    :func:`_check_jit`).  ``autotune=True`` adds the ninth route: for
    the first registered variant of each (op, direction), the
    cost-model autotuner searches the workload's plan space and the
    winning plan re-executes numerically, bit-identical to the default
    plan at exactly the predicted cycle count (see
    :func:`_check_autotune`).
    """
    if report is None:
        report = ValidationReport()
    x = make_input(case.ih, case.iw, case.c, n=case.n, seed=case.seed)
    spec = case.spec
    max_ref = maxpool_forward_ref(x, spec)
    avg_ref = avgpool_forward_ref(x, spec)
    mask_ref = maxpool_argmax_ref(x, spec)
    oh, ow = spec.out_hw(case.ih, case.iw)
    grad = make_gradient(x.shape[1], oh, ow, n=case.n, seed=case.seed + 1)
    names = tuple(impls) if impls is not None else None
    tuned_fwd: set[str] = set()
    tuned_bwd: set[str] = set()

    for name, op, with_mask in forward_variants(names):
        impl = forward_impl(name, op, with_mask)

        def run_fwd(
            cache, execute, model="serial", faults=None, retry=None,
            sanitize=False, plan="default", impl=impl,
        ):
            return run_forward(
                x, spec, impl, config, collect_trace=True,
                execute=execute, cache=cache, model=model,
                faults=faults, retry=retry, sanitize=sanitize,
                plan=plan,
            )

        routes = _routes(run_fwd, models)
        mask_tag = "+mask" if with_mask else ""
        prefix = f"{op}pool/{name}{mask_tag}/{case.label}"
        _check_routes(
            report,
            prefix,
            routes,
            max_ref if op == "max" else avg_ref,
            # MaxPool forward is bit-exact in every regime; AvgPool
            # tolerates fp16 summation regrouping (X-Y split).
            exact=op == "max",
            mask_ref=mask_ref if with_mask else None,
        )
        if chaos:
            _check_chaos(report, prefix, run_fwd, routes, models, config)
        if sanitize:
            _check_sanitize(report, prefix, run_fwd, routes, models)
        if jit:
            _check_jit(report, prefix, run_fwd, routes, models)
        if autotune and not with_mask and op not in tuned_fwd:
            tuned_fwd.add(op)
            from .plan import Workload

            workload = Workload.of_impl(
                "fwd", impl, spec, dtype_of(x), case.n, x.shape[1],
                case.ih, case.iw,
            )
            _check_autotune(
                report, prefix, run_fwd, routes, workload, config, models
            )

    bwd_max_ref = maxpool_backward_ref(mask_ref, grad, spec, case.ih, case.iw)
    bwd_avg_ref = avgpool_backward_ref(grad, spec, case.ih, case.iw)
    for name, op in backward_variants(names):
        impl = backward_impl(name, op)

        def run_bwd(
            cache, execute, model="serial", faults=None, retry=None,
            sanitize=False, plan="default", impl=impl, op=op,
        ):
            return run_backward(
                grad, spec, impl, case.ih, case.iw,
                mask=mask_ref if op == "max" else None,
                config=config, collect_trace=True,
                execute=execute, cache=cache, model=model,
                faults=faults, retry=retry, sanitize=sanitize,
                plan=plan,
            )

        routes = _routes(run_bwd, models)
        # Bit-exact against the golden model only while a single
        # summation order exists; row-chunked accumulate-DMA regroups
        # fp16 sums at chunk boundaries (README "Scope and fidelity").
        # Route-vs-route agreement stays bit-exact regardless.
        single_tile = len(routes["fresh"].tiles) == 1
        prefix = f"{op}pool-bwd/{name}/{case.label}"
        _check_routes(
            report,
            prefix,
            routes,
            bwd_max_ref if op == "max" else bwd_avg_ref,
            exact=op == "max" and single_tile,
        )
        if chaos:
            _check_chaos(report, prefix, run_bwd, routes, models, config)
        if sanitize:
            _check_sanitize(report, prefix, run_bwd, routes, models)
        if jit:
            _check_jit(report, prefix, run_bwd, routes, models)
        if autotune and op not in tuned_bwd:
            tuned_bwd.add(op)
            from .plan import Workload

            workload = Workload.of_impl(
                "bwd", impl, spec, dtype_of(grad), case.n, grad.shape[1],
                case.ih, case.iw,
            )
            _check_autotune(
                report, prefix, run_bwd, routes, workload, config, models
            )
    return report


def _case_fails(
    case: FuzzCase,
    config: ChipConfig,
    impls: Sequence[str] | None,
    models: Sequence[str] = DEFAULT_MODELS,
    chaos: bool = False,
    sanitize: bool = False,
    jit: bool = False,
    autotune: bool = False,
) -> bool:
    """Whether differential validation of ``case`` records any failure
    (geometry-invalid shrink candidates count as not failing)."""
    try:
        return not check_case(
            case, config, impls, models=models, chaos=chaos,
            sanitize=sanitize, jit=jit, autotune=autotune,
        ).all_passed
    except Exception:
        # A shrink candidate that cannot even be built is not a
        # *smaller* reproduction of a numeric mismatch.
        return False


def shrink_case(
    case: FuzzCase,
    still_fails: Callable[[FuzzCase], bool],
    max_evals: int = 60,
) -> FuzzCase:
    """Greedily minimize a failing case while it keeps failing.

    Batch and channels collapse first (``n -> 1``, ``c -> C0``), then
    the image extents binary-reduce (halving toward the smallest legal
    input, then decrementing) -- the order that shrinks fastest for
    slice-offset bugs, which usually survive at ``1x1`` output grids.
    """
    spec = case.spec
    min_ih = max(1, spec.kh - spec.pt - spec.pb)
    min_iw = max(1, spec.kw - spec.pl - spec.pr)
    evals = 0

    def candidates(cur: FuzzCase):
        if cur.n > 1:
            yield _dc_replace(cur, n=1)
        if cur.c > 16:
            yield _dc_replace(cur, c=16)
        for dim, floor in (("ih", min_ih), ("iw", min_iw)):
            val = getattr(cur, dim)
            for nxt in (max(floor, val // 2), val - 1):
                if floor <= nxt < val:
                    yield _dc_replace(cur, **{dim: nxt})

    cur = case
    improved = True
    while improved and evals < max_evals:
        improved = False
        for cand in candidates(cur):
            evals += 1
            if evals > max_evals:
                break
            if still_fails(cand):
                cur = cand
                improved = True
                break
    return cur


@dataclass
class FuzzFailure:
    """One failing fuzz case with its shrunk minimal reproducer."""

    case: FuzzCase
    shrunk: FuzzCase
    checks: list[CheckResult]

    def render(self) -> str:
        """Failure report with the ready-to-paste reproducer."""
        lines = [f"case {self.case.label} FAILED:"]
        for c in self.checks:
            lines.append(f"  [FAIL] {c.name} {c.detail}".rstrip())
        lines.append(f"  shrunk reproducer: {self.shrunk.reproducer()}")
        lines.append(
            f"  dims: ih={self.shrunk.ih} iw={self.shrunk.iw} "
            f"c={self.shrunk.c} n={self.shrunk.n} -> "
            f"out={self.shrunk.spec.out_hw(self.shrunk.ih, self.shrunk.iw)}"
        )
        return "\n".join(lines)


@dataclass
class FuzzReport:
    """Outcome of a differential fuzzing run."""

    seed: int
    cases: int = 0
    checks: int = 0
    failures: list[FuzzFailure] = field(default_factory=list)

    @property
    def all_passed(self) -> bool:
        """Whether no case recorded a failing check."""
        return not self.failures

    def render(self) -> str:
        """Human-readable run summary plus every shrunk failure."""
        lines = [
            f"fuzz(seed={self.seed}): {self.cases} cases, "
            f"{self.checks} checks, {len(self.failures)} failing cases"
        ]
        for f in self.failures:
            lines.append(f.render())
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-serializable report (the ``--json`` export payload)."""
        return {
            "seed": self.seed,
            "cases": self.cases,
            "checks": self.checks,
            "passed": self.all_passed,
            "failures": [
                {
                    "case": f.case.to_dict(),
                    "shrunk": f.shrunk.to_dict(),
                    "reproducer": f.shrunk.reproducer(),
                    "checks": [
                        {"name": c.name, "detail": c.detail}
                        for c in f.checks
                    ],
                }
                for f in self.failures
            ],
        }


def fuzz(
    seed: int = 0,
    cases: int = 50,
    config: ChipConfig = FUZZ_CHIP,
    impls: Sequence[str] | None = None,
    progress: Callable[[str], None] | None = None,
    models: Sequence[str] = DEFAULT_MODELS,
    chaos: bool = False,
    sanitize: bool = False,
    jit: bool = False,
    autotune: bool = False,
) -> FuzzReport:
    """Differentially fuzz every registered implementation.

    Generates ``cases`` seeded random geometries, runs each through the
    execution routes (fresh / relocated / cached / cycles, plus the
    pipelined scoreboard route when ``"pipelined"`` is in ``models``)
    for every registered forward and backward implementation, and
    shrinks any failure to a minimal reproducer.  ``impls`` optionally
    restricts the sweep to the named implementations (forward and
    backward names share one namespace).  ``chaos=True`` adds the
    fault-injection route: each operator re-runs under a seeded
    :class:`~repro.sim.FaultPlan` and must recover bit-identically.
    ``sanitize=True`` adds the strict memory-checking route: each
    operator re-runs per model under the sanitizer and must come back
    clean, bit-identical and cycle-exact.  ``jit=True`` adds the
    compiled-kernel route: each operator re-runs per model through
    ``execute="jit"`` and must be bit-identical and cycle-exact, with
    the warm cache serving the memoized kernel.  ``autotune=True`` adds
    the cost-model route: per (op, direction) the autotuner searches
    the workload and its winning plan re-runs numerically,
    bit-identical to the default plan at the predicted cycle count.
    """
    report = FuzzReport(seed=seed)
    for case in generate_cases(seed, cases):
        case_report = check_case(
            case, config, impls, models=models, chaos=chaos,
            sanitize=sanitize, jit=jit, autotune=autotune,
        )
        report.cases += 1
        report.checks += len(case_report.checks)
        if not case_report.all_passed:
            shrunk = shrink_case(
                case,
                lambda cand: _case_fails(
                    cand, config, impls, models, chaos, sanitize, jit,
                    autotune,
                ),
            )
            report.failures.append(
                FuzzFailure(
                    case=case,
                    shrunk=shrunk,
                    checks=case_report.failures,
                )
            )
            if progress is not None:
                progress(f"FAIL {case.label}")
        elif progress is not None and report.cases % 10 == 0:
            progress(f"{report.cases} cases ok")
    return report


# ---------------------------------------------------------------------------
# Serve-chaos route: the service layer under a seeded fault storm.
# ---------------------------------------------------------------------------

#: Fault profiles the serve-chaos storm cycles through.  ``clean`` is
#: the control group; ``crash``/``stall``/``slow``/``drop`` each
#: exercise one process-level fault class on the first attempt (the
#: service must recover byte-identically); ``deadline`` stalls *every*
#: attempt under a short budget, so the one correct outcome is a
#: punctual structured :class:`~repro.errors.DeadlineError`.
SERVE_CHAOS_PROFILES: tuple[str, ...] = (
    "clean", "crash", "stall", "slow", "drop", "deadline",
)

#: Deadline budget (ms) of the ``deadline`` profile.
_SERVE_DEADLINE_MS = 500.0

#: Watchdog scan period (ms) of the serve-chaos service.
_SERVE_WATCHDOG_MS = 50.0


@dataclass(frozen=True)
class ServeChaosCase:
    """One serve-chaos submission: a request plus its fault profile."""

    profile: str
    request: "object"  # PoolRequest (lazy import keeps serve optional)
    label: str


def generate_serve_cases(
    seed: int,
    count: int,
    models: Sequence[str] = DEFAULT_MODELS,
) -> list[ServeChaosCase]:
    """``count`` seeded random service requests with cycled fault profiles.

    Geometries come from the same biased sampler as the operator fuzz;
    kinds cover all four operators (backward masks derived from the
    golden model), timing models are drawn from ``models`` so
    ``--model both`` mixes serial and pipelined requests in one storm,
    and a slice of requests runs ``execute="jit"`` so compiled kernels
    cross the fault machinery too.
    """
    from .serve import PoolRequest

    rng = random.Random(zlib.crc32(b"serve-chaos") + seed)
    cases: list[ServeChaosCase] = []
    for idx in range(count):
        profile = SERVE_CHAOS_PROFILES[idx % len(SERVE_CHAOS_PROFILES)]
        ih, iw, c, n, spec = sample_pool_geometry(
            rng, max_out=4, max_kernel=3
        )
        case_seed = seed * 100003 + idx
        kind = rng.choice(
            ("maxpool", "maxpool", "avgpool",
             "maxpool_backward", "avgpool_backward")
        )
        model = rng.choice(tuple(models))
        execute = rng.choice(("numeric", "numeric", "numeric", "jit"))
        kw: dict = dict(execute=execute, model=model)
        if kind in ("maxpool", "avgpool"):
            x = make_input(ih, iw, c, n=n, seed=case_seed)
            kw.update(x=x, impl="im2col")
            if kind == "maxpool" and rng.random() < 0.5:
                kw["with_mask"] = True
        else:
            x = make_input(ih, iw, c, n=n, seed=case_seed)
            oh, ow = spec.with_image(ih, iw).out_hw()
            grad = make_gradient(x.shape[1], oh, ow, n=n,
                                 seed=case_seed + 1)
            kw.update(x=grad, impl="col2im", ih=ih, iw=iw)
            if kind == "maxpool_backward":
                kw["mask"] = maxpool_argmax_ref(x, spec)
        if profile == "crash":
            kw["chaos_crash_attempts"] = (0,)
        elif profile == "stall":
            kw["chaos_stall_attempts"] = (0,)
        elif profile == "slow":
            kw["chaos_slow_ms"] = float(rng.randint(50, 150))
            kw["chaos_slow_attempts"] = (0,)
        elif profile == "drop":
            kw["chaos_drop_reply"] = (0,)
        elif profile == "deadline":
            kw["chaos_stall_attempts"] = tuple(range(8))
            kw["deadline_ms"] = _SERVE_DEADLINE_MS
        request = PoolRequest(
            kind=kind, spec=spec, tenant=f"tenant{idx % 4}", **kw
        )
        label = (
            f"{profile}/{kind}/{model}/{execute}"
            f"/{n}x{ih}x{iw}x{c}@{case_seed}"
        )
        cases.append(ServeChaosCase(
            profile=profile, request=request, label=label,
        ))
    return cases


def _strip_chaos(request):
    """The fault-free twin of ``request`` (the byte-identity oracle)."""
    return _dc_replace(
        request,
        deadline_ms=None,
        chaos_crash_attempts=(),
        chaos_stall_attempts=(),
        chaos_slow_ms=0.0,
        chaos_slow_attempts=(),
        chaos_drop_reply=(),
    )


def serve_chaos(
    seed: int = 0,
    cases: int = 50,
    models: Sequence[str] = DEFAULT_MODELS,
    workers: int = 3,
    config: ChipConfig = FUZZ_CHIP,
    progress: Callable[[str], None] | None = None,
) -> ValidationReport:
    """The tenth route: drive a seeded fault storm through the service.

    Builds one :class:`~repro.serve.PoolService` (stall watchdog +
    hedging enabled, generous retry budget so every recoverable fault
    *is* recovered), submits ``cases`` requests concurrently with
    cycled fault profiles (:data:`SERVE_CHAOS_PROFILES`), and checks:

    * every non-``deadline`` request completes with outputs, masks and
      cycle counts **byte-identical** to executing its chaos-stripped
      twin in-process (the service adds routing, recovery, hedging --
      never arithmetic);
    * every ``deadline`` request fails with a structured
      :class:`~repro.errors.DeadlineError` (stage/deadline recorded)
      within deadline + one watchdog period (plus scheduling slack);
    * the ledger closes exactly once: ``submitted`` equals resolved
      futures, ``completed + failed == submitted``, no pending-request
      or in-flight-dispatch residue survives the storm;
    * the storm actually exercised the machinery (stalls detected,
      worker deaths recovered).
    """
    import asyncio

    from .serve import (
        PoolService,
        ResilienceConfig,
        TenantQuota,
        execute_request,
    )
    from .errors import DeadlineError

    report = ValidationReport()
    storm = generate_serve_cases(seed, cases, models)

    # Oracles first, synchronously: the event loop must stay free to
    # run the watchdog while the storm is in flight.
    oracles = {
        idx: execute_request(_strip_chaos(c.request), config)
        for idx, c in enumerate(storm)
        if c.profile != "deadline"
    }

    resilience = ResilienceConfig(
        stall_timeout_ms=1200.0,
        watchdog_interval_ms=_SERVE_WATCHDOG_MS,
        hedge_after_ms=400.0,
    )

    async def drive():
        svc = PoolService(
            workers=workers,
            config=config,
            queue_limit=max(64, 4 * cases),
            default_quota=TenantQuota(max_pending=max(64, 4 * cases)),
            resilience=resilience,
            retry=RetryPolicy(max_attempts=8, quarantine_after=64),
        )
        await svc.start()
        try:
            loop = asyncio.get_running_loop()

            async def one(idx, case):
                t0 = loop.time()
                try:
                    res = await svc.submit(case.request)
                    return idx, res, None, loop.time() - t0
                except Exception as exc:
                    return idx, None, exc, loop.time() - t0

            outcomes = await asyncio.gather(
                *(one(i, c) for i, c in enumerate(storm))
            )
            # Let hedge losers / post-resolution stragglers drain so
            # the ledger checks below see the settled end state.
            for _ in range(100):
                if not svc._dispatched:
                    break
                await asyncio.sleep(0.1)
            return outcomes, svc.stats, dict(
                requests=len(svc._requests),
                dispatched=len(svc._dispatched),
            )
        finally:
            await svc.close(drain=False)

    outcomes, stats, residue = asyncio.run(drive())

    for idx, res, exc, elapsed in outcomes:
        case = storm[idx]
        if case.profile == "deadline":
            ok = isinstance(exc, DeadlineError)
            report.add(
                f"{case.label}/deadline-error", ok,
                "" if ok else f"got {type(exc).__name__ if exc else res}",
            )
            if ok:
                report.add(
                    f"{case.label}/deadline-context",
                    exc.deadline_ms == _SERVE_DEADLINE_MS
                    and exc.stage in ("admission", "queued", "in-flight"),
                    f"stage={exc.stage}",
                )
                # Punctual: deadline + one watchdog period, plus slack
                # for event-loop scheduling under the storm.
                bound = (
                    _SERVE_DEADLINE_MS + _SERVE_WATCHDOG_MS
                ) / 1e3 + 0.5
                report.add(
                    f"{case.label}/deadline-punctual", elapsed <= bound,
                    f"{elapsed * 1e3:.0f} ms vs bound {bound * 1e3:.0f} ms",
                )
            continue
        if exc is not None:
            report.add(
                f"{case.label}/completed", False,
                f"{type(exc).__name__}: {exc}",
            )
            continue
        direct = oracles[idx]
        ok = (
            (res.output is None) == (direct.output is None)
            and (res.output is None
                 or np.array_equal(res.output, direct.output))
            and (res.mask is None) == (direct.mask is None)
            and (res.mask is None
                 or np.array_equal(res.mask, direct.mask))
            and res.cycles == direct.cycles
        )
        report.add(
            f"{case.label}/byte-identical", ok,
            "" if ok else _diff_detail(res.output, direct.output),
        )
        if case.profile in ("crash", "stall"):
            report.add(
                f"{case.label}/recovered", res.attempts >= 2,
                f"attempts={res.attempts}",
            )
        if progress is not None and (idx + 1) % 10 == 0:
            progress(f"{idx + 1}/{len(storm)} outcomes checked")

    # Exactly-once ledger over the whole storm.
    resolved = len(outcomes)
    report.add(
        "ledger/every-submission-resolved", resolved == len(storm),
        f"{resolved}/{len(storm)}",
    )
    # Deadline-profile submissions may be rejected at admission (not
    # counted as submitted) only if the queue overflowed -- with the
    # generous queue above, all of them are admitted.
    report.add(
        "ledger/submitted-equals-storm", stats.submitted == len(storm),
        f"submitted={stats.submitted} storm={len(storm)}",
    )
    report.add(
        "ledger/completed-plus-failed",
        stats.completed + stats.failed == stats.submitted,
        f"{stats.completed}+{stats.failed} vs {stats.submitted}",
    )
    report.add(
        "ledger/no-pending-residue", residue["requests"] == 0,
        f"pending={residue['requests']}",
    )
    report.add(
        "ledger/no-inflight-residue", residue["dispatched"] == 0,
        f"dispatched={residue['dispatched']}",
    )
    # Injected-vs-observed fault accounting.  Counters are lower
    # bounds, not 1:1 with injected profiles: a fault leg queued in
    # the inbox of a worker another leg already killed is requeued
    # *past* its chaos attempt (it redispatches as attempt >= 1, so
    # attempt-0 chaos never fires), and one worker termination can
    # clear several stalled legs at once.
    n_stall = sum(1 for c in storm if c.profile == "stall")
    n_deadline = sum(1 for c in storm if c.profile == "deadline")
    n_crash = sum(1 for c in storm if c.profile == "crash")
    if n_stall:
        report.add(
            "storm/stalls-detected", stats.stalls_detected >= 1,
            f"detected={stats.stalls_detected} injected={n_stall}",
        )
    if n_crash or n_stall:
        report.add(
            "storm/worker-deaths-recovered",
            stats.worker_failures >= 1 and stats.respawns >= 1,
            f"deaths={stats.worker_failures} respawns={stats.respawns}",
        )
    if n_deadline:
        # Every admitted deadline-profile request misses exactly once
        # (it stalls on all attempts) and nothing else carries one.
        report.add(
            "storm/deadline-misses-counted",
            stats.deadline_misses == n_deadline,
            f"misses={stats.deadline_misses} injected={n_deadline}",
        )
    return report


# ---------------------------------------------------------------------------
# Integrity route: silent-data-corruption storms through the service.
# ---------------------------------------------------------------------------

#: Quarantine threshold of the integrity storms: a slot producing this
#: many corrupt replies is benched, so the checks below can pin down
#: exactly when the corrupt worker must stop serving traffic.
_INTEGRITY_QUARANTINE_AFTER = 2


def generate_integrity_cases(
    seed: int,
    count: int,
    models: Sequence[str] = DEFAULT_MODELS,
) -> list[tuple["object", str]]:
    """``count`` seeded *clean* requests for the integrity storms.

    Same biased geometry sampler and kind/model/execute mix as the
    serve-chaos storm, but no fault profiles: each storm below applies
    its own corruption hook to copies of these requests, so the clean
    originals double as the in-process byte-identity oracles.
    """
    from .serve import PoolRequest

    rng = random.Random(zlib.crc32(b"integrity") + seed)
    cases: list[tuple[object, str]] = []
    for idx in range(count):
        ih, iw, c, n, spec = sample_pool_geometry(
            rng, max_out=4, max_kernel=3
        )
        case_seed = seed * 100003 + idx
        kind = rng.choice(
            ("maxpool", "maxpool", "avgpool",
             "maxpool_backward", "avgpool_backward")
        )
        model = rng.choice(tuple(models))
        execute = rng.choice(("numeric", "numeric", "numeric", "jit"))
        kw: dict = dict(execute=execute, model=model)
        if kind in ("maxpool", "avgpool"):
            x = make_input(ih, iw, c, n=n, seed=case_seed)
            kw.update(x=x, impl="im2col")
            if kind == "maxpool" and rng.random() < 0.5:
                kw["with_mask"] = True
        else:
            x = make_input(ih, iw, c, n=n, seed=case_seed)
            oh, ow = spec.with_image(ih, iw).out_hw()
            grad = make_gradient(x.shape[1], oh, ow, n=n,
                                 seed=case_seed + 1)
            kw.update(x=grad, impl="col2im", ih=ih, iw=iw)
            if kind == "maxpool_backward":
                kw["mask"] = maxpool_argmax_ref(x, spec)
        request = PoolRequest(
            kind=kind, spec=spec, tenant=f"tenant{idx % 4}", **kw
        )
        label = f"{kind}/{model}/{execute}/{n}x{ih}x{iw}x{c}@{case_seed}"
        cases.append((request, label))
    return cases


def _result_bytes(res) -> bytes:
    """The byte-exact identity of a result (output + mask + cycles).

    ``tobytes`` rather than ``array_equal`` on purpose: a flipped sign
    bit on a 0.0 compares *numerically* equal (-0.0 == 0.0) but is
    still corruption, and the fingerprint rightly treats it as such.
    """
    parts = []
    for arr in (res.output, res.mask):
        parts.append(b"\x00" if arr is None else
                     b"\x01" + np.ascontiguousarray(arr).tobytes())
    parts.append(str(int(res.cycles)).encode("ascii"))
    return b"|".join(parts)


def integrity_storm(
    seed: int = 0,
    cases: int = 50,
    models: Sequence[str] = DEFAULT_MODELS,
    workers: int = 3,
    config: ChipConfig = FUZZ_CHIP,
    progress: Callable[[str], None] | None = None,
) -> ValidationReport:
    """The eleventh route: silent-corruption storms through the service.

    Four scenarios over one seeded case set, each against a live
    :class:`~repro.serve.PoolService` with integrity checking on:

    * **clean** (false-positive control): full fingerprinting plus
      ``audit_rate=1.0`` over untampered workers -- zero fingerprint
      failures, zero audit mismatches, zero integrity incidents, and
      every response byte-identical to in-process execution;
    * **payload** (transit corruption): worker 0 flips one bit in
      every reply *after* fingerprinting -- service-side verification
      must absorb every corrupt reply (no corrupt bytes ever served,
      all responses still byte-identical), charge the slot, and
      quarantine it at the threshold;
    * **output** (corrupt core): worker 0 flips one bit *before*
      fingerprinting, so the reply is self-consistent and only
      dual-execution audits can see it -- every corruptly-served
      response must trigger an audit mismatch, the tie-break must
      convict slot 0 with a structured
      :class:`~repro.errors.IntegrityError`, and responses served by
      healthy workers stay byte-identical;
    * **KAT**: a quiet fleet under a fast probe cadence stays
      incident-free, and a fleet whose probes chaos-corrupt worker 1
      convicts it with no user traffic at all.

    Requests are submitted *sequentially* so placement is
    deterministic (ties break to the lowest slot: the corrupt worker
    is guaranteed traffic before its quarantine).
    """
    import asyncio

    from .errors import IntegrityError
    from .serve import (
        IntegrityConfig,
        PoolService,
        TenantQuota,
        execute_request,
    )

    report = ValidationReport()
    storm = generate_integrity_cases(seed, cases, models)
    oracles = [
        _result_bytes(execute_request(req, config)) for req, _ in storm
    ]

    retry = RetryPolicy(
        max_attempts=8, quarantine_after=_INTEGRITY_QUARANTINE_AFTER
    )

    async def drive(integrity, chaos_field=None):
        svc = PoolService(
            workers=workers,
            config=config,
            queue_limit=max(64, 4 * len(storm)),
            default_quota=TenantQuota(max_pending=max(64, 4 * len(storm))),
            retry=retry,
            integrity=integrity,
        )
        await svc.start()
        try:
            outcomes = []
            for idx, (req, label) in enumerate(storm):
                if chaos_field is not None:
                    req = _dc_replace(req, **{chaos_field: (0,)})
                try:
                    res = await svc.submit(req)
                    outcomes.append((idx, res, None))
                except Exception as exc:  # noqa: BLE001 - storm verdicts
                    outcomes.append((idx, None, exc))
                if progress is not None and (idx + 1) % 20 == 0:
                    progress(f"{idx + 1}/{len(storm)} submitted")
            # Let audit/tie-break probes drain (or hit probe_timeout_ms)
            # so the counters below see the settled end state.
            for _ in range(240):
                if not svc._dispatched and not svc._requests:
                    break
                await asyncio.sleep(0.05)
            return outcomes, svc.stats, list(svc.integrity_errors), dict(
                requests=len(svc._requests),
                dispatched=len(svc._dispatched),
            )
        finally:
            await svc.close(drain=False)

    def check_ledger(prefix, outcomes, stats, residue):
        report.add(
            f"{prefix}/every-submission-resolved",
            len(outcomes) == len(storm),
            f"{len(outcomes)}/{len(storm)}",
        )
        report.add(
            f"{prefix}/completed-plus-failed",
            stats.completed + stats.failed == stats.submitted,
            f"{stats.completed}+{stats.failed} vs {stats.submitted}",
        )
        report.add(
            f"{prefix}/no-residue",
            residue["requests"] == 0 and residue["dispatched"] == 0,
            f"pending={residue['requests']} "
            f"dispatched={residue['dispatched']}",
        )

    # -- scenario 1: clean storm (false-positive control) ---------------
    outcomes, stats, errors, residue = asyncio.run(
        drive(IntegrityConfig(audit_rate=1.0, seed=seed))
    )
    for idx, res, exc in outcomes:
        label = storm[idx][1]
        if exc is not None:
            report.add(f"clean/{label}/completed", False,
                       f"{type(exc).__name__}: {exc}")
            continue
        report.add(
            f"clean/{label}/byte-identical",
            _result_bytes(res) == oracles[idx]
            and res.fingerprint_ok is True,
            f"fingerprint_ok={res.fingerprint_ok}",
        )
    report.add(
        "clean/zero-false-positives",
        stats.fingerprint_failures == 0 and stats.audit_mismatches == 0
        and stats.corrupt_workers_quarantined == 0 and not errors
        and not stats.quarantined,
        f"fp_failures={stats.fingerprint_failures} "
        f"mismatches={stats.audit_mismatches} errors={len(errors)} "
        f"quarantined={stats.quarantined}",
    )
    report.add(
        "clean/audits-exercised", stats.audits_run >= 1,
        f"audits_run={stats.audits_run}",
    )
    check_ledger("clean", outcomes, stats, residue)
    if progress is not None:
        progress("clean storm checked")

    # -- scenario 2: transit corruption (fingerprint catches it) --------
    outcomes, stats, errors, residue = asyncio.run(
        drive(IntegrityConfig(), chaos_field="chaos_corrupt_payload")
    )
    served_by_corrupt = 0
    for idx, res, exc in outcomes:
        label = storm[idx][1]
        if exc is not None:
            report.add(f"payload/{label}/completed", False,
                       f"{type(exc).__name__}: {exc}")
            continue
        served_by_corrupt += res.worker == 0
        report.add(
            f"payload/{label}/byte-identical",
            _result_bytes(res) == oracles[idx],
            f"served by worker {res.worker}",
        )
    report.add(
        "payload/corrupt-slot-never-serves", served_by_corrupt == 0,
        f"{served_by_corrupt} responses from the corrupt slot",
    )
    report.add(
        "payload/corruption-detected",
        stats.fingerprint_failures >= _INTEGRITY_QUARANTINE_AFTER,
        f"fp_failures={stats.fingerprint_failures}",
    )
    report.add(
        "payload/corrupt-slot-quarantined",
        0 in stats.quarantined
        and stats.corrupt_workers_quarantined == 1,
        f"quarantined={stats.quarantined} "
        f"counted={stats.corrupt_workers_quarantined}",
    )
    check_ledger("payload", outcomes, stats, residue)
    if progress is not None:
        progress("payload storm checked")

    # -- scenario 3: corrupt core (audits + tie-break catch it) ---------
    outcomes, stats, errors, residue = asyncio.run(
        drive(IntegrityConfig(audit_rate=1.0, seed=seed),
              chaos_field="chaos_corrupt_output")
    )
    served_by_corrupt = 0
    for idx, res, exc in outcomes:
        label = storm[idx][1]
        if exc is not None:
            report.add(f"output/{label}/completed", False,
                       f"{type(exc).__name__}: {exc}")
            continue
        report.add(
            f"output/{label}/audited", res.audited,
            "audit_rate=1.0 must sample everything",
        )
        if res.worker == 0:
            served_by_corrupt += 1
            report.add(
                f"output/{label}/corruption-served-corrupt",
                _result_bytes(res) != oracles[idx],
                "corrupt worker served oracle-identical bytes",
            )
        else:
            report.add(
                f"output/{label}/byte-identical",
                _result_bytes(res) == oracles[idx],
                f"served by worker {res.worker}",
            )
    # Sequential submission + lowest-slot ties: the corrupt worker
    # serves the very first request before any audit can convict it.
    report.add(
        "output/corrupt-slot-served-traffic", served_by_corrupt >= 1,
        f"{served_by_corrupt} responses from the corrupt slot",
    )
    report.add(
        "output/every-corruption-detected",
        stats.audit_mismatches >= served_by_corrupt,
        f"mismatches={stats.audit_mismatches} "
        f"corrupt-served={served_by_corrupt}",
    )
    report.add(
        "output/corrupt-slot-convicted",
        any(isinstance(e, IntegrityError) and e.slot == 0
            for e in errors)
        and 0 in stats.quarantined
        and stats.corrupt_workers_quarantined >= 1,
        f"errors={[e.slot for e in errors]} "
        f"quarantined={stats.quarantined}",
    )
    report.add(
        "output/no-healthy-slot-convicted",
        all(e.slot in (0, None) for e in errors)
        and all(s == 0 for s in stats.quarantined),
        f"errors={[e.slot for e in errors]} "
        f"quarantined={stats.quarantined}",
    )
    check_ledger("output", outcomes, stats, residue)
    if progress is not None:
        progress("output storm checked")

    # -- scenario 4: known-answer probes --------------------------------
    async def kat_quiet():
        svc = PoolService(
            workers=2, config=config, retry=retry,
            integrity=IntegrityConfig(kat_interval_ms=40.0),
        )
        await svc.start()
        try:
            for _ in range(40):
                await asyncio.sleep(0.05)
                if svc.stats.kat_probes >= 3:
                    break
            return svc.stats, list(svc.integrity_errors)
        finally:
            await svc.close(drain=False)

    stats, errors = asyncio.run(kat_quiet())
    report.add(
        "kat/quiet-fleet-probed", stats.kat_probes >= 3,
        f"kat_probes={stats.kat_probes}",
    )
    report.add(
        "kat/quiet-fleet-clean",
        not errors and not stats.quarantined,
        f"errors={len(errors)} quarantined={stats.quarantined}",
    )

    async def kat_corrupt():
        svc = PoolService(
            workers=3, config=config, retry=retry,
            integrity=IntegrityConfig(
                kat_interval_ms=40.0, kat_chaos_corrupt_output=(1,)
            ),
        )
        await svc.start()
        try:
            for _ in range(200):
                await asyncio.sleep(0.05)
                if any(e.slot == 1 for e in svc.integrity_errors):
                    break
            return svc.stats, list(svc.integrity_errors)
        finally:
            await svc.close(drain=False)

    stats, errors = asyncio.run(kat_corrupt())
    report.add(
        "kat/corrupt-core-convicted-between-requests",
        any(isinstance(e, IntegrityError) and e.slot == 1
            for e in errors)
        and 1 in stats.quarantined,
        f"errors={[e.slot for e in errors]} "
        f"quarantined={stats.quarantined}",
    )
    report.add(
        "kat/only-corrupt-core-convicted",
        all(e.slot == 1 for e in errors)
        and all(s == 1 for s in stats.quarantined),
        f"errors={[e.slot for e in errors]} "
        f"quarantined={stats.quarantined}",
    )
    if progress is not None:
        progress("kat scenarios checked")
    return report


# ---------------------------------------------------------------------------
# CLI.
# ---------------------------------------------------------------------------

def _known_impls() -> set[str]:
    from .ops import BACKWARD_IMPLS, FORWARD_IMPLS

    return set(FORWARD_IMPLS) | set(BACKWARD_IMPLS)


def main(argv: list[str] | None = None) -> int:
    """``python -m repro.validate``: grid validation + differential fuzz.

    Exits 0 when every check passes, 1 on any failure (after printing
    the shrunk minimal reproducers), 2 on usage errors.
    """
    parser = argparse.ArgumentParser(
        prog="python -m repro.validate",
        description="Validate every registered pooling implementation: "
        "the fixed geometry grid against the golden models, then a "
        "seeded differential fuzz across the execution routes "
        "(fresh / relocated / cached / cycles, plus the pipelined "
        "scoreboard route unless --model serial).",
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="fuzzing seed (the run is deterministic per seed)",
    )
    parser.add_argument(
        "--cases", type=int, default=50,
        help="number of random geometries to fuzz (0 disables fuzzing)",
    )
    parser.add_argument(
        "--impl", nargs="+", default=None, metavar="NAME",
        help="restrict to these implementation names "
        "(forward: standard/im2col/expansion/xysplit; "
        "backward: standard/col2im)",
    )
    parser.add_argument(
        "--json", default=None, metavar="PATH",
        help="write the machine-readable report to this file",
    )
    parser.add_argument(
        "--skip-grid", action="store_true",
        help="skip the fixed-grid golden-model sweep",
    )
    parser.add_argument(
        "--chaos", action="store_true",
        help="add the fault-injection route: run every fuzzed geometry "
        "under a seeded FaultPlan through the resilient dispatcher and "
        "assert recovered outputs are bit-identical to the fault-free "
        "run (unrecoverable cases fail with a shrunk reproducer)",
    )
    parser.add_argument(
        "--sanitize", action="store_true",
        help="add the strict memory-checking route: re-run every fuzzed "
        "geometry per timing model under the ISA-level sanitizer "
        "(poison-on-reset, operand bounds/init checks against the "
        "allocation manifest, shadow-diffed execute() side effects, "
        "pipelined race audit) and assert the run is clean, "
        "bit-identical to the unsanitized run and cycle-exact",
    )
    parser.add_argument(
        "--jit", action="store_true",
        help="add the compiled-kernel route: re-run every fuzzed "
        "geometry per timing model through the NumPy JIT "
        "(execute='jit') and assert outputs and masks are "
        "bit-identical to the interpreter, cycle counts are "
        "unchanged, and the warm program cache serves the memoized "
        "kernel",
    )
    parser.add_argument(
        "--autotune", action="store_true",
        help="add the cost-model route: per sampled geometry run the "
        "plan autotuner (coarse chunk grid, first variant per op and "
        "direction), re-execute the winning plan numerically, and "
        "assert it is bit-identical to the default plan, costs no "
        "more than the default-plan baseline, and lands exactly on "
        "the search's cycles-mode prediction",
    )
    parser.add_argument(
        "--serve-chaos", action="store_true",
        help="run ONLY the serve-layer chaos route: submit --cases "
        "seeded requests with cycled fault profiles (clean / crash / "
        "stall / slow / drop / deadline) through a PoolService with "
        "the stall watchdog and hedging enabled, and assert recovered "
        "responses are byte-identical to in-process execution, "
        "deadline misses raise punctual structured DeadlineErrors, "
        "and the exactly-once ledger closes with no residue "
        "(skips the grid and the operator fuzz)",
    )
    parser.add_argument(
        "--integrity", action="store_true",
        help="run ONLY the integrity route: drive seeded "
        "silent-data-corruption storms (clean control / post-"
        "fingerprint payload corruption / pre-fingerprint corrupt "
        "core / known-answer probes) through a PoolService with "
        "IntegrityConfig active, and assert zero false positives on "
        "clean traffic, every injected corruption detected, the "
        "corrupt slot convicted and quarantined, and surviving "
        "responses byte-identical to in-process execution "
        "(skips the grid and the operator fuzz)",
    )
    parser.add_argument(
        "--model", choices=("serial", "pipelined", "both"),
        default="both",
        help="timing models to exercise: 'serial' runs only the four "
        "classic routes; 'pipelined'/'both' add the scoreboard route "
        "with its bit-identical-output and makespan<=serial invariants "
        "(the pipelined checks always compare against the serial "
        "baseline, so 'pipelined' and 'both' are equivalent)",
    )
    args = parser.parse_args(argv)
    if args.cases < 0:
        parser.error("--cases must be >= 0")
    if args.impl is not None:
        unknown = sorted(set(args.impl) - _known_impls())
        if unknown:
            parser.error(
                f"unknown implementation(s) {unknown}; known: "
                f"{sorted(_known_impls())}"
            )

    from .bench.export import write_json
    from .bench.report import render_config

    models: tuple[str, ...] = (
        ("serial",) if args.model == "serial" else DEFAULT_MODELS
    )
    print(render_config(FUZZ_CHIP))
    payload: dict = {
        "models": list(models),
        "chaos": args.chaos,
        "sanitize": args.sanitize,
        "jit": args.jit,
        "autotune": args.autotune,
        "serve_chaos": args.serve_chaos,
        "integrity": args.integrity,
    }
    failed = False

    if args.integrity:
        integrity_report = integrity_storm(
            seed=args.seed,
            cases=args.cases or 50,
            models=models,
            progress=lambda msg: print(f"  {msg}", flush=True),
        )
        print("integrity:", integrity_report.render(only_failures=True))
        payload["integrity_report"] = integrity_report.to_dict()
        failed |= not integrity_report.all_passed
        if args.json:
            path = write_json(payload, args.json)
            print(f"wrote {path}")
        return 1 if failed else 0

    if args.serve_chaos:
        serve_report = serve_chaos(
            seed=args.seed,
            cases=args.cases or 50,
            models=models,
            progress=lambda msg: print(f"  {msg}", flush=True),
        )
        print("serve-chaos:", serve_report.render(only_failures=True))
        payload["serve_chaos_report"] = serve_report.to_dict()
        failed |= not serve_report.all_passed
        if args.json:
            path = write_json(payload, args.json)
            print(f"wrote {path}")
        return 1 if failed else 0

    if not args.skip_grid:
        grid_report = validate_all(models=models)
        print("grid:", grid_report.render(only_failures=True))
        payload["grid"] = grid_report.to_dict()
        failed |= not grid_report.all_passed

    if args.cases:
        fuzz_report = fuzz(
            seed=args.seed,
            cases=args.cases,
            impls=args.impl,
            progress=lambda msg: print(f"  {msg}", flush=True),
            models=models,
            chaos=args.chaos,
            sanitize=args.sanitize,
            jit=args.jit,
            autotune=args.autotune,
        )
        print(fuzz_report.render())
        payload["fuzz"] = fuzz_report.to_dict()
        failed |= not fuzz_report.all_passed

    if args.json:
        path = write_json(payload, args.json)
        print(f"wrote {path}")
    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
