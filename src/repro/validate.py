"""Self-validation: run every implementation against the golden models.

Downstream users porting these kernels (or tweaking the cost model /
chip configuration) can call :func:`validate_all` to sweep every
implementation across a geometry grid and get a pass/fail report --
the same checks the test suite runs, packaged as a library feature::

    from repro.validate import validate_all
    report = validate_all()
    assert report.all_passed, report.render()
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .config import ASCEND910_SINGLE_CORE, ChipConfig
from .ops import (
    PoolSpec,
    run_backward,
    run_forward,
    backward_impl,
    forward_impl,
)
from .ops.reference import (
    avgpool_backward_ref,
    avgpool_forward_ref,
    maxpool_argmax_ref,
    maxpool_backward_ref,
    maxpool_forward_ref,
)
from .workloads import make_gradient, make_input

#: Geometry grid: (h, w, c, spec) covering the paper's regimes --
#: overlap / no overlap / max overlap / anisotropic / padded.
DEFAULT_GRID: tuple[tuple[int, int, int, PoolSpec], ...] = (
    (13, 13, 16, PoolSpec.square(3, 2)),
    (12, 12, 16, PoolSpec.square(2, 2)),
    (12, 12, 16, PoolSpec.square(3, 3)),
    (9, 9, 16, PoolSpec.square(3, 1)),
    (10, 14, 16, PoolSpec(kh=3, kw=2, sh=2, sw=3)),
    (10, 10, 16, PoolSpec(kh=3, kw=3, sh=2, sw=2, pb=1, pr=1)),
)

#: Tolerance (in float32) for cases with a regrouped fp16 summation.
_TOL = dict(rtol=5e-3, atol=5e-3)


@dataclass(frozen=True)
class CheckResult:
    name: str
    passed: bool
    detail: str = ""


@dataclass
class ValidationReport:
    checks: list[CheckResult] = field(default_factory=list)

    def add(self, name: str, passed: bool, detail: str = "") -> None:
        self.checks.append(CheckResult(name, passed, detail))

    @property
    def all_passed(self) -> bool:
        return all(c.passed for c in self.checks)

    @property
    def failures(self) -> list[CheckResult]:
        return [c for c in self.checks if not c.passed]

    def render(self) -> str:
        lines = [
            f"{len(self.checks)} checks, "
            f"{len(self.failures)} failures"
        ]
        for c in self.checks:
            mark = "ok  " if c.passed else "FAIL"
            lines.append(f"  [{mark}] {c.name} {c.detail}")
        return "\n".join(lines)


def _close(a: np.ndarray, b: np.ndarray, exact: bool) -> bool:
    if exact:
        return bool(np.array_equal(a, b))
    return bool(np.allclose(
        a.astype(np.float32), b.astype(np.float32), **_TOL
    ))


def validate_all(
    config: ChipConfig = ASCEND910_SINGLE_CORE,
    grid=DEFAULT_GRID,
    seed: int = 0,
) -> ValidationReport:
    """Run every (implementation, op, geometry) combination and compare
    against the golden models."""
    report = ValidationReport()
    for h, w, c, spec in grid:
        x = make_input(h, w, c, seed=seed)
        label = f"{h}x{w}x{c}/k{spec.kh}{spec.kw}s{spec.sh}{spec.sw}"
        max_ref = maxpool_forward_ref(x, spec)
        avg_ref = avgpool_forward_ref(x, spec)
        mask_ref = maxpool_argmax_ref(x, spec)
        oh, ow = spec.out_hw(h, w)
        grad = make_gradient(x.shape[1], oh, ow, seed=seed + 1)

        for name in ("standard", "im2col", "expansion", "xysplit"):
            res = run_forward(x, spec, forward_impl(name, "max"),
                              config, collect_trace=False)
            report.add(f"maxpool/{name}/{label}",
                       _close(res.output, max_ref, exact=True))
            res = run_forward(x, spec, forward_impl(name, "avg"),
                              config, collect_trace=False)
            report.add(f"avgpool/{name}/{label}",
                       _close(res.output, avg_ref, exact=(name != "xysplit")))

        for name in ("standard", "im2col"):
            res = run_forward(x, spec, forward_impl(name, "max", True),
                              config, collect_trace=False)
            ok = (_close(res.output, max_ref, True)
                  and res.mask is not None
                  and _close(res.mask, mask_ref, True))
            report.add(f"maxpool+mask/{name}/{label}", ok)

        bwd_max_ref = maxpool_backward_ref(mask_ref, grad, spec, h, w)
        bwd_avg_ref = avgpool_backward_ref(grad, spec, h, w)
        for name in ("standard", "col2im"):
            res = run_backward(grad, spec, backward_impl(name, "max"),
                               h, w, mask=mask_ref, config=config,
                               collect_trace=False)
            report.add(f"maxpool-bwd/{name}/{label}",
                       _close(res.output, bwd_max_ref, exact=True))
            res = run_backward(grad, spec, backward_impl(name, "avg"),
                               h, w, config=config, collect_trace=False)
            report.add(f"avgpool-bwd/{name}/{label}",
                       _close(res.output, bwd_avg_ref, exact=True))
    return report
