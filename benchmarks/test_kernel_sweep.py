"""Extension sweep: speedup vs kernel size (not a paper figure).

The paper fixes the kernel at (3,3).  Sweeping kernels 2..5 at stride 2
shows the Im2col advantage *shrinks* as the kernel grows: the SCU must
emit ``Kh*Kw`` duplicated planes (cost growing with the kernel area),
while the standard kernel's repeat field absorbs the whole ``Kw`` walk,
leaving its issue count growing only with ``Kh``.  Im2col still wins at
every kernel size -- the gap just narrows, mirroring how stride (the
other duplication knob) behaves in Figure 8.
"""

import numpy as np
from conftest import record_cycles, run_once

from repro.config import ASCEND910_SINGLE_CORE
from repro.ops import PoolSpec, maxpool
from repro.ops.reference import maxpool_forward_ref
from repro.workloads import make_input


def speedup_for_kernel(k: int) -> float:
    size = 33
    x = make_input(size, size, 16, seed=0)
    spec = PoolSpec.square(k, 2)
    ref = maxpool_forward_ref(x, spec)
    cycles = {}
    for impl in ("standard", "im2col"):
        res = maxpool(x, spec, impl=impl, config=ASCEND910_SINGLE_CORE,
                      collect_trace=False)
        assert np.array_equal(res.output, ref), (impl, k)
        cycles[impl] = res.cycles
    return cycles["standard"] / cycles["im2col"]


def test_kernel_sweep(benchmark, capsys):
    def run():
        return {k: speedup_for_kernel(k) for k in (2, 3, 4, 5)}

    speedups = run_once(benchmark, run)
    with capsys.disabled():
        print("\nkernel sweep (stride 2, 33x33x16):",
              ", ".join(f"k{k}->{s:.2f}x" for k, s in speedups.items()))
    values = list(speedups.values())
    # the duplication cost grows with kernel area: the advantage shrinks
    # monotonically but never inverts
    assert values == sorted(values, reverse=True), speedups
    assert all(s > 2.0 for s in values), speedups
    record_cycles(
        benchmark, **{f"speedup_k{k}_x100": int(s * 100)
                      for k, s in speedups.items()}
    )


def test_avgpool_cube_vs_vector(benchmark, capsys):
    """Future-work comparison: the Cube-unit AvgPool (diagonal-kernel
    convolution, Section VIII) vs the Vector-unit Im2col AvgPool."""
    from repro.ops import avgpool
    from repro.ops.fused import avgpool_via_cube

    x = make_input(24, 24, 32, seed=1)
    spec = PoolSpec.square(3, 2)

    def run():
        cube = avgpool_via_cube(x, spec, config=ASCEND910_SINGLE_CORE,
                                collect_trace=False)
        vec = avgpool(x, spec, impl="im2col",
                      config=ASCEND910_SINGLE_CORE, collect_trace=False)
        np.testing.assert_allclose(
            cube.output.astype(np.float32), vec.output.astype(np.float32),
            rtol=2e-3, atol=2e-3,
        )
        return cube.cycles, vec.cycles

    cube_cy, vec_cy = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\navgpool 24x24x32: Cube route {cube_cy}cy vs Vector "
              f"route {vec_cy}cy (standalone pooling belongs on the "
              f"Vector Unit)")
    assert vec_cy < cube_cy
    record_cycles(benchmark, cube=cube_cy, vector=vec_cy)
