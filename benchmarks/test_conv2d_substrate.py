"""Substrate bench: convolution on the Cube Unit via Im2Col (the
instructions' primary purpose) and its Col2Im-based input gradient.

Not a paper figure -- it validates that the simulated instructions
serve their original client at a sensible cost, and gives the pooling
numbers scale (the paper's premise is that pooling, while cheaper than
convolution, "can hinder the overall performance" when naive).
"""

import numpy as np
from conftest import record_cycles, run_once

from repro.ops import PoolSpec
from repro.ops.conv2d import (
    conv2d,
    conv2d_input_grad,
    conv2d_input_grad_ref,
    conv2d_ref,
)
from repro.workloads import make_input

_cycles: dict = {}


def test_conv2d_forward(benchmark, rng_seed=0):
    rng = np.random.default_rng(rng_seed)
    x = make_input(24, 24, 32, seed=3)
    w = (rng.standard_normal((32, 32, 3, 3)) * 0.1).astype(np.float16)
    spec = PoolSpec.square(3, 1)

    def run():
        return conv2d(x, w, spec, collect_trace=False)

    res = run_once(benchmark, run)
    ref = conv2d_ref(x, w, spec)
    np.testing.assert_allclose(
        res.output.astype(np.float32), ref.astype(np.float32),
        rtol=2e-3, atol=2e-3,
    )
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _cycles["fwd"] = res.cycles


def test_conv2d_input_grad(benchmark):
    rng = np.random.default_rng(1)
    spec = PoolSpec.square(3, 1)
    dy = rng.standard_normal((1, 2, 22, 22, 16)).astype(np.float16)
    w = (rng.standard_normal((32, 32, 3, 3)) * 0.1).astype(np.float16)

    def run():
        return conv2d_input_grad(dy, w, spec, 24, 24, collect_trace=False)

    res = run_once(benchmark, run)
    ref = conv2d_input_grad_ref(dy, w, spec, 24, 24)
    np.testing.assert_allclose(
        res.output.astype(np.float32), ref.astype(np.float32),
        rtol=2e-2, atol=2e-2,
    )
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _cycles["bwd"] = res.cycles


def test_conv_dwarfs_pooling(benchmark, capsys):
    """The paper's motivation: convolution dominates; pooling only
    matters when badly implemented."""
    from repro.ops import maxpool

    x = make_input(22, 22, 32, seed=4)

    def run():
        return maxpool(x, PoolSpec.square(3, 2), impl="im2col",
                       collect_trace=False).cycles

    pool_cycles = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nconv fwd {_cycles['fwd']}cy vs maxpool fwd "
              f"{pool_cycles}cy on the same activations")
    assert _cycles["fwd"] > pool_cycles
