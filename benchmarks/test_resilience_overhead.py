"""Resilience-layer overhead guard.

Two contracts, measured on a Table-1-scale MaxPool sweep:

1. **Zero cost when idle** -- with no :class:`~repro.sim.FaultPlan`
   the resilient dispatcher is never entered, and even with an *empty*
   plan (the machinery engaged but no fault firing) the chip's cycle
   counts are identical to the historical loop and the wall-clock
   overhead is bounded.  This is what keeps every figure export and
   ``BENCH_sim_throughput.json`` byte-stable across the fault-injection
   PR.

2. **Chaos recovers bit-identically and accounts its overhead** -- a
   seeded fault plan recovers to the exact fault-free outputs while the
   attached :class:`~repro.sim.ResilienceReport` explains every extra
   cycle.

Exports ``BENCH_resilience.json`` at the repo root so the recovery
overhead trajectory is tracked across PRs (the throughput export is
deliberately untouched).
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from repro.config import ASCEND910
from repro.ops import PoolSpec
from repro.ops.base import run_forward
from repro.ops.registry import forward_impl
from repro.sim import FaultPlan, ProgramCache, RetryPolicy

from repro.workloads import make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_resilience.json"

N, C = 2, 64
H = W = 56
SPEC = PoolSpec.square(3, 2)
IMPL = forward_impl("im2col", "max")
CHAOS_SEED = 0


def _run(faults=None, retry=None, execute="cycles", cache=None):
    x = make_input(H, W, C, n=N, seed=0)
    return run_forward(
        x, SPEC, IMPL, ASCEND910, collect_trace=False,
        execute=execute, cache=cache, faults=faults, retry=retry,
    )


class TestZeroOverheadWhenIdle:
    def test_no_plan_identical_cycles_and_no_report(self, benchmark):
        base = _run()
        t0 = time.perf_counter()
        res = run_once(benchmark, lambda: _run())
        idle_seconds = time.perf_counter() - t0
        assert res.resilience is None
        assert res.cycles == base.cycles
        assert res.chip.per_core_cycles == base.chip.per_core_cycles
        record_cycles(
            benchmark,
            total_cycles=res.cycles,
            idle_wall_ms=int(idle_seconds * 1000),
        )

    def test_empty_plan_cycle_identical(self, benchmark):
        """Even with the dispatcher engaged (empty plan), cycle counts
        match the historical loop exactly and the report is clean."""
        base = _run()
        res = run_once(
            benchmark,
            lambda: _run(faults=FaultPlan(()), retry=RetryPolicy()),
        )
        rep = res.resilience
        assert rep is not None and rep.clean
        assert res.cycles == base.cycles
        assert res.chip.total_work_cycles == base.chip.total_work_cycles
        assert res.chip.per_core_cycles == base.chip.per_core_cycles
        record_cycles(benchmark, total_cycles=res.cycles)


class TestChaosOverheadAccounted:
    def test_recovery_bit_identical_and_export(self, benchmark):
        base = _run(execute="numeric", cache=ProgramCache())
        plan = FaultPlan.generate(
            CHAOS_SEED,
            num_tiles=len(base.chip.per_tile),
            num_cores=ASCEND910.num_cores,
        )
        assert plan.faults, "chaos seed produced an empty plan"
        res = run_once(
            benchmark,
            lambda: _run(
                faults=plan, retry=RetryPolicy(),
                execute="numeric", cache=ProgramCache(),
            ),
        )
        rep = res.resilience
        assert rep is not None
        assert rep.plan_faults == len(plan.faults)
        assert np.array_equal(res.output, base.output), (
            "recovered outputs must be bit-identical to the fault-free run"
        )
        assert res.chip.total_work_cycles >= base.chip.total_work_cycles
        assert rep.extra_cycles > 0, (
            "a non-empty chaos plan should cost something"
        )
        record_cycles(
            benchmark,
            total_cycles=res.cycles,
            extra_cycles=rep.extra_cycles,
        )
        payload = {
            "workload": {
                "n": N, "c": C, "h": H, "w": W,
                "kernel": [SPEC.kh, SPEC.kw],
                "stride": [SPEC.sh, SPEC.sw],
                "impl": "im2col",
            },
            "chaos_seed": CHAOS_SEED,
            "plan_faults": len(plan.faults),
            "fault_free_cycles": base.cycles,
            "chaos_cycles": res.cycles,
            "resilience": rep.to_dict(),
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")
