"""Section VI-A headline: "speedups of 3.2x, 5x, and 5.8x".

Runs all three Figure 7 comparisons at the largest input and prints the
measured-vs-paper summary that EXPERIMENTS.md records.
"""

from conftest import record_cycles, run_once

from repro.bench import fig7a, fig7b, fig7c, headline_speedups
from repro.bench.report import PAPER_HEADLINES, render_speedups


def test_headline_speedups(benchmark, capsys):
    def run():
        return headline_speedups(fig7a(), fig7b(), fig7c())

    measured = run_once(benchmark, run)
    record_cycles(
        benchmark,
        **{k.replace(" ", "_"): int(v * 100) for k, v in measured.items()},
    )
    with capsys.disabled():
        print()
        print(render_speedups(measured))
    for key, paper in PAPER_HEADLINES.items():
        assert paper * 0.7 <= measured[key] <= paper * 1.3, (key, measured)
