"""Shared helpers for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures on the
simulated chip.  The quantity of record is the *simulated cycle count*
(attached to every benchmark via ``extra_info`` and printed as a
figure-style table); pytest-benchmark's wall-clock timing additionally
tracks the simulator's own speed.  Every run uses a single round: the
simulator is deterministic, so repetition adds information only about
host noise.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.ops.reference import maxpool_argmax_ref
from repro.workloads import make_gradient, make_input


def run_once(benchmark, fn):
    """Benchmark ``fn`` with one round/iteration and return its result."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture(scope="session")
def fig7_inputs():
    """Inputs + reference masks/gradients for the three Figure 7
    configurations, built once per session."""
    from repro.workloads import evaluated_layers

    data = {}
    for layer in evaluated_layers():
        x = make_input(layer.h, layer.w, layer.c, seed=0)
        mask = maxpool_argmax_ref(x, layer.spec)
        oh, ow = layer.out_hw()
        grad = make_gradient(x.shape[1], oh, ow, seed=1)
        data[layer.hwc] = (layer, x, mask, grad)
    return data


def record_cycles(benchmark, **cycles: int) -> None:
    for key, value in cycles.items():
        benchmark.extra_info[key] = value
