"""Ablation: how the reproduced speedups depend on the calibrated cost
constants (DESIGN.md Section 4).

Two sweeps at the (35,35,288) geometry:

* instruction issue overhead -- the standard implementation pays it
  ``Oh*Ow*Kh`` times, the Im2col one ``Kh*Kw`` times, so the speedup
  must grow with it;
* SCU Im2col fractal cost -- pure overhead of the accelerated path, so
  the speedup must shrink with it.

These demonstrate that the headline numbers are calibration-sensitive
in the *expected direction only*: no setting reverses the paper's
verdict for the strided configurations.
"""

from conftest import record_cycles, run_once

from repro.config import ASCEND910
from repro.ops import maxpool
from repro.workloads import make_input
from repro.ops.spec import PoolSpec

SPEC = PoolSpec.square(3, 2)


def speedup(cfg, x):
    std = maxpool(x, SPEC, impl="standard", config=cfg,
                  collect_trace=False).cycles
    i2c = maxpool(x, SPEC, impl="im2col", config=cfg,
                  collect_trace=False).cycles
    return std / i2c


def test_ablation_issue_overhead(benchmark, capsys):
    x = make_input(35, 35, 288, seed=0)

    def run():
        return [
            (i, speedup(ASCEND910.with_cost(issue_cycles=i), x))
            for i in (1, 2, 4, 8)
        ]

    points = run_once(benchmark, run)
    with capsys.disabled():
        print("\nissue_cycles sweep:",
              ", ".join(f"{i}->{s:.2f}x" for i, s in points))
    values = [s for _, s in points]
    assert values == sorted(values), "speedup must grow with issue cost"
    assert all(s > 1.5 for s in values), "im2col must win at any setting"
    record_cycles(benchmark, speedup_at_issue8_x100=int(values[-1] * 100))


def test_ablation_im2col_fractal_cost(benchmark, capsys):
    x = make_input(35, 35, 288, seed=0)

    def run():
        return [
            (f, speedup(ASCEND910.with_cost(im2col_fractal_cycles=f), x))
            for f in (2, 8, 16, 32)
        ]

    points = run_once(benchmark, run)
    with capsys.disabled():
        print("\nim2col_fractal_cycles sweep:",
              ", ".join(f"{f}->{s:.2f}x" for f, s in points))
    values = [s for _, s in points]
    assert values == sorted(values, reverse=True), \
        "speedup must shrink as the SCU gets slower"
    assert values[-1] > 1.0, \
        "even a 32-cycle SCU leaves im2col ahead at stride 2"
    record_cycles(benchmark, speedup_at_scu32_x100=int(values[-1] * 100))


def test_ablation_tile_launch(benchmark, capsys):
    # Launch overhead hits both implementations identically per tile;
    # it should barely move the ratio.
    x = make_input(35, 35, 288, seed=0)

    def run():
        lo = speedup(ASCEND910.with_cost(tile_launch_cycles=0), x)
        hi = speedup(ASCEND910.with_cost(tile_launch_cycles=512), x)
        return lo, hi

    lo, hi = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\ntile_launch 0 -> {lo:.2f}x, 512 -> {hi:.2f}x")
    assert abs(lo - hi) / lo < 0.35
