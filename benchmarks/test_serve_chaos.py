"""Serving-layer resilience SLOs: goodput and tail latency under faults.

Drives the same mixed burst through :class:`repro.serve.PoolService`
twice -- once clean, once with a seeded fault mix (worker crashes,
tail-latency stragglers, dropped replies) against a hedging + stall
watchdog config -- and exports ``BENCH_serve_chaos.json`` at the repo
root: p50/p99 end-to-end latency and goodput with and without faults,
the hedge win rate, the overload shed rate of a priority-tiered burst,
the integrity counters of a corrupt-core burst under dual-execution
auditing, and the recovery time after a hung-but-alive worker stall.
Every
faulty-burst response is still checked byte-identical to a direct
:mod:`repro.ops.api` call: resilience must never trade correctness
for availability.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.errors import AdmissionError
from repro.ops import PoolSpec
from repro.serve import (
    IntegrityConfig,
    PoolRequest,
    PoolService,
    ResilienceConfig,
    TenantQuota,
    execute_request,
)
from repro.sim import RetryPolicy
from repro.workloads import make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_serve_chaos.json"

SPEC = PoolSpec.square(3, 2)
WORKERS = 3
#: Distinct pooling geometries in the burst (different input extents).
EXTENTS = (16, 18, 20)
#: Requests per geometry per burst.
REPEATS = 8
TIMEOUT = 300.0

#: The fault mix applied to the faulty burst, cycled by request index.
#: ``None`` entries stay clean so goodput under faults is meaningful.
FAULTS = (None, None, None, "slow", None, "crash", None, "drop")

RESILIENCE = ResilienceConfig(
    stall_timeout_ms=1500.0,
    watchdog_interval_ms=50.0,
    hedge_after_ms=250.0,
)


def _requests(faulty: bool) -> list[PoolRequest]:
    reqs = []
    for rep in range(REPEATS):
        for gi, ext in enumerate(EXTENTS):
            idx = rep * len(EXTENTS) + gi
            kw: dict = {}
            fault = FAULTS[idx % len(FAULTS)] if faulty else None
            if fault == "slow":
                kw = dict(chaos_slow_ms=400.0, chaos_slow_attempts=(0,))
            elif fault == "crash":
                kw = dict(chaos_crash_attempts=(0,))
            elif fault == "drop":
                kw = dict(chaos_drop_reply=(0,))
            reqs.append(PoolRequest(
                kind="maxpool",
                x=make_input(ext, ext, 32, seed=rep),
                spec=SPEC,
                tenant=f"tenant{idx % 3}",
                **kw,
            ))
    return reqs


def _strip(r: PoolRequest) -> PoolRequest:
    import dataclasses
    return dataclasses.replace(
        r, chaos_crash_attempts=(), chaos_slow_ms=0.0,
        chaos_slow_attempts=(), chaos_drop_reply=(),
    )


async def _burst(requests: list[PoolRequest]) -> dict:
    async with PoolService(
        workers=WORKERS,
        queue_limit=len(requests) + 8,
        resilience=RESILIENCE,
        retry=RetryPolicy(max_attempts=6, quarantine_after=32),
    ) as svc:
        t0 = time.perf_counter()
        responses = await asyncio.gather(
            *(svc.submit(r) for r in requests)
        )
        wall = time.perf_counter() - t0
        latencies_ms = sorted(r.latency * 1e3 for r in responses)
        n = len(latencies_ms)
        stats = svc.stats
        return {
            "requests": n,
            "wall_seconds": round(wall, 4),
            "goodput_req_per_s": round(stats.completed / wall, 2),
            "p50_ms": round(statistics.median(latencies_ms), 3),
            "p99_ms": round(latencies_ms[min(n - 1, int(n * 0.99))], 3),
            "max_ms": round(latencies_ms[-1], 3),
            "hedges": stats.hedges,
            "hedge_wins": stats.hedge_wins,
            "hedge_win_rate": round(
                stats.hedge_wins / stats.hedges, 4
            ) if stats.hedges else 0.0,
            "worker_failures": stats.worker_failures,
            "stalls_detected": stats.stalls_detected,
            "retries": stats.retries,
            "responses": responses,
        }


async def _shed_scenario() -> dict:
    """Priority-tiered overload: low-priority work yields to high."""
    quotas = {
        "gold": TenantQuota(max_pending=64, priority=10),
        "bronze": TenantQuota(max_pending=64, priority=0),
    }
    cfg = ResilienceConfig(shed_low_priority=True, retry_after_ms=50.0)
    async with PoolService(
        workers=1, max_inflight_per_worker=1, queue_limit=6,
        quotas=quotas, resilience=cfg,
    ) as svc:
        # Saturate the queue with bronze work behind a slow head
        # (distinct impls defeat the coalescing window bypass), then
        # land a wave of gold arrivals that must shed bronze.
        impls = ("im2col", "standard", "expansion", "xysplit")
        bronze = [
            asyncio.ensure_future(svc.submit(PoolRequest(
                kind="maxpool", x=make_input(16, 16, 32, seed=i),
                spec=SPEC, impl=impls[i % len(impls)], tenant="bronze",
                chaos_slow_ms=300.0 if i == 0 else 0.0,
            )))
            for i in range(6)
        ]
        await asyncio.sleep(0.1)
        gold_ok = 0
        for i in range(4):
            try:
                await svc.submit(PoolRequest(
                    kind="maxpool",
                    x=make_input(22, 22, 32, seed=100 + i),
                    spec=SPEC, tenant="gold",
                ))
                gold_ok += 1
            except AdmissionError:
                pass
        outcomes = await asyncio.gather(*bronze, return_exceptions=True)
        shed = [
            e for e in outcomes
            if isinstance(e, AdmissionError) and e.retry_after is not None
        ]
        submitted = svc.stats.submitted
        return {
            "bronze_submitted": len(bronze),
            "gold_completed": gold_ok,
            "shed": svc.stats.shed,
            "shed_rate": round(svc.stats.shed / submitted, 4),
            "retry_after_hints": len(shed),
        }


async def _recovery_scenario() -> dict:
    """Wall-clock from a stall to the recovered byte-identical reply."""
    cfg = ResilienceConfig(
        stall_timeout_ms=600.0, watchdog_interval_ms=40.0)
    async with PoolService(workers=2, resilience=cfg) as svc:
        req = PoolRequest(
            kind="maxpool", x=make_input(16, 16, 32, seed=7), spec=SPEC,
            chaos_stall_attempts=(0,),
        )
        t0 = time.perf_counter()
        res = await svc.submit(req)
        recovery_s = time.perf_counter() - t0
        direct = execute_request(_strip(req))
        assert np.array_equal(res.output, direct.output)
        assert res.attempts == 2
        return {
            "stall_timeout_ms": cfg.stall_timeout_ms,
            "recovery_ms": round(recovery_s * 1e3, 3),
            "stalls_detected": svc.stats.stalls_detected,
            "respawns": svc.stats.respawns,
        }


async def _integrity_scenario() -> dict:
    """Corrupt-core burst under integrity checking: the new counters.

    Worker 0 flips one output bit per reply (pre-fingerprint, so only
    dual-execution audits can see it); the burst is submitted
    sequentially so the corrupt slot is guaranteed traffic before its
    conviction.  Exported as the ``integrity`` section so the chaos
    SLO file tracks detection alongside goodput.
    """
    reqs = [
        PoolRequest(
            kind="maxpool",
            x=make_input(ext, ext, 32, seed=rep),
            spec=SPEC,
            tenant=f"tenant{rep % 3}",
            chaos_corrupt_output=(0,),
        )
        for rep in range(4) for ext in EXTENTS
    ]
    async with PoolService(
        workers=WORKERS,
        queue_limit=len(reqs) + 8,
        retry=RetryPolicy(max_attempts=6, quarantine_after=2),
        integrity=IntegrityConfig(audit_rate=1.0),
    ) as svc:
        responses = [await svc.submit(r) for r in reqs]
        for _ in range(200):
            if not svc._dispatched and not svc._requests:
                break
            await asyncio.sleep(0.02)
        stats = svc.stats
        return {
            "requests": len(reqs),
            "served_by_corrupt_slot":
                sum(r.worker == 0 for r in responses),
            "audits_run": stats.audits_run,
            "audit_mismatches": stats.audit_mismatches,
            "kat_probes": stats.kat_probes,
            "fingerprint_failures": stats.fingerprint_failures,
            "corrupt_workers_quarantined":
                stats.corrupt_workers_quarantined,
            "quarantined": list(stats.quarantined),
            "incidents": len(svc.integrity_errors),
        }


class TestServeChaos:
    def test_slos_and_export(self, benchmark):
        clean_reqs = _requests(faulty=False)
        faulty_reqs = _requests(faulty=True)
        direct = {
            ext: execute_request(PoolRequest(
                kind="maxpool", x=make_input(ext, ext, 32, seed=0),
                spec=SPEC,
            ))
            for ext in EXTENTS
        }

        clean = asyncio.run(
            asyncio.wait_for(_burst(clean_reqs), TIMEOUT))
        faulty = asyncio.run(
            asyncio.wait_for(_burst(faulty_reqs), TIMEOUT))

        # Correctness gate: every faulty-burst response byte-identical
        # to a direct, chaos-free call on the same request.
        for req, res in zip(faulty_reqs, faulty.pop("responses")):
            d = execute_request(_strip(req))
            assert np.array_equal(res.output, d.output), req.x.shape
            assert res.cycles == d.cycles
        clean.pop("responses")

        # Every injected fault class actually fired and was survived.
        assert faulty["worker_failures"] > 0, faulty
        assert faulty["hedges"] > 0, faulty
        assert faulty["hedge_wins"] > 0, faulty
        # The clean burst saw none of it.
        assert clean["worker_failures"] == 0, clean
        assert clean["stalls_detected"] == 0, clean

        shed = asyncio.run(asyncio.wait_for(_shed_scenario(), TIMEOUT))
        assert shed["shed"] > 0, shed
        assert shed["gold_completed"] > 0, shed

        integrity = asyncio.run(
            asyncio.wait_for(_integrity_scenario(), TIMEOUT))
        assert integrity["served_by_corrupt_slot"] >= 1, integrity
        assert (integrity["audit_mismatches"]
                >= integrity["served_by_corrupt_slot"]), integrity
        assert integrity["quarantined"] == [0], integrity

        recovery = asyncio.run(
            asyncio.wait_for(_recovery_scenario(), TIMEOUT))
        assert recovery["stalls_detected"] == 1, recovery
        # Recovery is bounded: stall timeout + watchdog period +
        # respawn + re-execution, far below any retry storm.
        assert recovery["recovery_ms"] < 10_000.0, recovery

        # wall-clock of record: the faulty burst (the scenario the
        # resilience machinery exists for)
        run_once(
            benchmark,
            lambda: asyncio.run(asyncio.wait_for(
                _burst(faulty_reqs), TIMEOUT
            )),
        )
        record_cycles(
            benchmark,
            request_cycles=direct[EXTENTS[0]].cycles,
            faulty_goodput_x100=int(faulty["goodput_req_per_s"] * 100),
        )

        payload = {
            "workload": {
                "kind": "maxpool",
                "impl": "im2col",
                "kernel": [SPEC.kh, SPEC.kw],
                "stride": [SPEC.sh, SPEC.sw],
                "extents": list(EXTENTS),
                "c": 32,
                "requests": len(clean_reqs),
                "workers": WORKERS,
            },
            "fault_mix": {
                "cycle": [f or "clean" for f in FAULTS],
                "slow_ms": 400.0,
                "hedge_after_ms": RESILIENCE.hedge_after_ms,
                "stall_timeout_ms": RESILIENCE.stall_timeout_ms,
            },
            "host_cores": os.cpu_count(),
            "baseline": clean,
            "faulty": faulty,
            "shed": shed,
            "integrity": integrity,
            "recovery": recovery,
            "contract": (
                "faulty-burst responses byte-identical to direct "
                "repro.ops.api calls; goodput counts completed "
                "requests only; hedge_win_rate = hedge_wins/hedges; "
                "shed_rate = shed/submitted of the priority-tiered "
                "overload scenario; recovery_ms is submit-to-response "
                "wall clock across one stall detection + respawn + "
                "retry"
            ),
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")
