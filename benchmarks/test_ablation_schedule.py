"""Ablation: what each automatic schedule optimisation buys.

Lowers Listing 1 (standard MaxPool, 35x35 tile, stride 2) and Listing 2
(the Im2col layout) under four schedules and reports the simulated
cycles -- quantifying Section V's two factors separately: mask
saturation (wide vectorization) and the repeat parameter.
"""

import numpy as np
from conftest import record_cycles, run_once

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.expr import (
    Axis,
    DEFAULT_SCHEDULE,
    NAIVE_SCHEDULE,
    Reduce,
    Schedule,
    TensorDecl,
    lower_stage,
    reduce_stage,
)
from repro.isa import Program
from repro.sim import AICore, GlobalMemory

C0 = 16
IH = 35
OH = (IH - 3) // 2 + 1

SCHEDULES = {
    "auto (AKG default)": DEFAULT_SCHEDULE,
    "no repeat fold": Schedule(allow_repeat_fold=False),
    "C0-only vectorize": Schedule(vectorize_c0_only=True),
    "naive": NAIVE_SCHEDULE,
}


def listing1_cycles(schedule):
    inp = TensorDecl("in", (IH, IH, C0))
    out = TensorDecl("out", (OH, OH, C0))
    aoh, aow, ac = Axis("oh", OH), Axis("ow", OH), Axis("c0", C0)
    rkh, rkw = Axis("kh", 3), Axis("kw", 3)
    stage = reduce_stage(
        out, (aoh, aow, ac),
        Reduce("max", inp[aoh * 2 + rkh, aow * 2 + rkw, ac], (rkh, rkw)),
    )
    return _run(stage, {"in": IH * IH * C0, "out": OH * OH * C0}, schedule)


def listing2_cycles(schedule):
    planes = TensorDecl("planes", (3, 3, OH, OH, C0))
    out = TensorDecl("out", (OH, OH, C0))
    aoh, aow, ac = Axis("oh", OH), Axis("ow", OH), Axis("c0", C0)
    rkh, rkw = Axis("kh", 3), Axis("kw", 3)
    stage = reduce_stage(
        out, (aoh, aow, ac),
        Reduce("max", planes[rkh, rkw, aoh, aow, ac], (rkh, rkw)),
    )
    return _run(
        stage, {"planes": 9 * OH * OH * C0, "out": OH * OH * C0}, schedule
    )


def _run(stage, sizes, schedule):
    core = AICore(ASCEND910)
    gm = GlobalMemory()
    rng = np.random.default_rng(0)
    binding = {}
    for name, size in sizes.items():
        ref = core.alloc("UB", size, name)
        core.view("UB")[ref.offset:ref.end] = rng.standard_normal(
            size
        ).astype(np.float16)
        binding[name] = ref
    prog = Program("ablation")
    lower_stage(stage, binding, prog, FLOAT16, schedule=schedule)
    return core.run(prog, gm, collect_trace=False).cycles


def test_schedule_ablation_listing1(benchmark, capsys):
    def run():
        return {name: listing1_cycles(s) for name, s in SCHEDULES.items()}

    cycles = run_once(benchmark, run)
    with capsys.disabled():
        print("\nListing 1 (standard layout) schedule ablation:")
        for name, c in cycles.items():
            print(f"  {name:<20s} {c:>8d} cy")
    # the repeat fold is the dominant optimisation here -- the strided
    # access already blocks wide vectorization for the reduction (the
    # C0-only schedule only loses the wide *init fill*, a small delta)
    assert cycles["auto (AKG default)"] < cycles["no repeat fold"]
    assert (cycles["auto (AKG default)"] <= cycles["C0-only vectorize"]
            < 1.1 * cycles["auto (AKG default)"])
    record_cycles(benchmark, auto=cycles["auto (AKG default)"],
                  naive=cycles["naive"])


def test_schedule_ablation_listing2(benchmark, capsys):
    def run():
        return {name: listing2_cycles(s) for name, s in SCHEDULES.items()}

    cycles = run_once(benchmark, run)
    with capsys.disabled():
        print("\nListing 2 (Im2col layout) schedule ablation:")
        for name, c in cycles.items():
            print(f"  {name:<20s} {c:>8d} cy")
    # wide vectorization is the dominant win on this layout
    assert cycles["auto (AKG default)"] < cycles["C0-only vectorize"]
    assert cycles["C0-only vectorize"] < cycles["naive"]
    record_cycles(benchmark, auto=cycles["auto (AKG default)"],
                  naive=cycles["naive"])


def test_layout_and_schedule_compose(benchmark, capsys):
    """The full picture: layout change x schedule change."""

    def run():
        return (
            listing1_cycles(DEFAULT_SCHEDULE),
            listing1_cycles(NAIVE_SCHEDULE),
            listing2_cycles(DEFAULT_SCHEDULE),
            listing2_cycles(NAIVE_SCHEDULE),
        )

    l1_auto, l1_naive, l2_auto, l2_naive = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nlayout x schedule: standard/naive {l1_naive}cy, "
              f"standard/auto {l1_auto}cy, im2col/naive {l2_naive}cy, "
              f"im2col/auto {l2_auto}cy")
    # the paper's point: the layout unlocks the schedule -- the naive
    # im2col is no better than the auto standard, the auto im2col
    # beats everything.
    assert l2_auto < l1_auto < l1_naive
    assert l2_auto < l2_naive
