"""Figure 7b: MaxPool forward with the Argmax mask.

Paper result: the accelerated variant reaches 5x at the largest input;
the mask step "adds to the computation" on both sides.
"""

import numpy as np
import pytest
from conftest import record_cycles, run_once

from repro.ops import maxpool
from repro.ops.reference import maxpool_argmax_ref, maxpool_forward_ref

SIZES = [(147, 147, 64), (71, 71, 192), (35, 35, 288)]

_results: dict = {}


@pytest.mark.parametrize("hwc", SIZES, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
@pytest.mark.parametrize("impl", ["standard", "im2col"])
def test_fig7b(benchmark, fig7_inputs, hwc, impl):
    layer, x, mask_ref, _ = fig7_inputs[hwc]

    def run():
        return maxpool(x, layer.spec, impl=impl, with_mask=True,
                       collect_trace=False)

    res = run_once(benchmark, run)
    assert np.array_equal(res.output, maxpool_forward_ref(x, layer.spec))
    assert np.array_equal(res.mask, mask_ref)
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _results[(hwc, impl)] = res.cycles


@pytest.mark.parametrize("hwc", SIZES, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
def test_fig7b_speedup(benchmark, hwc, capsys):
    def speedup():
        return _results[(hwc, "standard")] / _results[(hwc, "im2col")]

    s = run_once(benchmark, speedup)
    record_cycles(benchmark, speedup_x100=int(s * 100))
    with capsys.disabled():
        print(f"\nFig7b {hwc}: standard={_results[(hwc, 'standard')]}cy "
              f"im2col={_results[(hwc, 'im2col')]}cy speedup={s:.2f}x "
              f"(paper: up to 5x)")
    assert 2.5 <= s <= 6.5
