"""NumPy-JIT throughput guard: compiled batch kernels vs interpreter.

The per-instruction numeric interpreter re-derives gather/scatter index
arrays and bounds checks on every instruction of every tile; for a
Table-1-scale sweep that Python dispatch dominates the wall clock.  The
JIT (:mod:`repro.sim.compile`) compiles each unique tile program once
into a fused batch kernel and replays it per relocated slice clone.

This guard measures interpreter vs. JIT wall-clock per implementation
on a Table-1-scale workload (forward *and* backward), asserts outputs
and cycle counts are bit-identical, requires a median speedup of at
least 10x, and exports ``BENCH_jit.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import statistics
import time
from pathlib import Path

import numpy as np

from repro.config import ASCEND910
from repro.ops import PoolSpec
from repro.ops.base import run_backward, run_forward
from repro.ops.registry import backward_impl, forward_impl
from repro.ops.reference import maxpool_argmax_ref
from repro.sim import ProgramCache
from repro.workloads import make_gradient, make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_jit.json"

#: Table-1-scale workload (VGG16-class 56x56 rows): 128 slices of a
#: 3x3/s2 MaxPool, enough relocated clones that per-instruction
#: dispatch dominates the interpreter's wall clock.
N, C = 2, 64
H = W = 56
SPEC = PoolSpec.square(3, 2)
FWD_IMPLS = ("standard", "im2col")
BWD_IMPLS = ("standard", "col2im")
MIN_MEDIAN_SPEEDUP = 10.0


def _workload():
    x = make_input(H, W, C, n=N, seed=0)
    mask = maxpool_argmax_ref(x, SPEC)
    oh, ow = SPEC.out_hw(H, W)
    grad = make_gradient(x.shape[1], oh, ow, n=N, seed=1)
    return x, mask, grad


def _bench_entry(label, run):
    """Interpreter vs JIT wall-time of one operator invocation."""
    t0 = time.perf_counter()
    ref = run(execute="numeric", cache=ProgramCache())
    interp_s = time.perf_counter() - t0

    cache = ProgramCache()
    run(execute="jit", cache=cache)  # compile + warm
    t0 = time.perf_counter()
    jit = run(execute="jit", cache=cache)
    jit_s = time.perf_counter() - t0

    assert np.array_equal(ref.output, jit.output), label
    if ref.mask is not None:
        assert np.array_equal(ref.mask, jit.mask), label
    assert ref.cycles == jit.cycles, (
        f"{label}: JIT changed the cycle count "
        f"({jit.cycles} != {ref.cycles})"
    )
    assert cache.stats.jit_hits > 0, label
    return {
        "impl": label,
        "cycles": ref.cycles,
        "interpreter_seconds": round(interp_s, 6),
        "jit_seconds": round(jit_s, 6),
        "speedup": round(interp_s / jit_s, 2),
    }


class TestJitThroughput:
    def test_jit_speedup_and_export(self, benchmark):
        x, mask, grad = _workload()
        entries = []

        for name in FWD_IMPLS:
            impl = forward_impl(name, "max", with_mask=True)

            def run_fwd(execute, cache, impl=impl):
                return run_forward(
                    x, SPEC, impl, ASCEND910, collect_trace=False,
                    execute=execute, cache=cache,
                )

            entries.append(_bench_entry(f"maxpool-{name}+mask", run_fwd))

        for name in BWD_IMPLS:
            impl = backward_impl(name, "max")

            def run_bwd(execute, cache, impl=impl):
                return run_backward(
                    grad, SPEC, impl, H, W, mask=mask, config=ASCEND910,
                    collect_trace=False, execute=execute, cache=cache,
                )

            entries.append(_bench_entry(f"maxpool-bwd-{name}", run_bwd))

        median = statistics.median(e["speedup"] for e in entries)
        assert median >= MIN_MEDIAN_SPEEDUP, (
            f"median JIT speedup {median:.1f}x below the "
            f"{MIN_MEDIAN_SPEEDUP:.0f}x floor: {entries}"
        )

        # Time the steady state of one representative entry.
        cache = ProgramCache()
        impl = forward_impl(FWD_IMPLS[1], "max", with_mask=True)
        run_forward(
            x, SPEC, impl, ASCEND910, collect_trace=False,
            execute="jit", cache=cache,
        )
        run_once(
            benchmark,
            lambda: run_forward(
                x, SPEC, impl, ASCEND910, collect_trace=False,
                execute="jit", cache=cache,
            ),
        )
        record_cycles(
            benchmark,
            total_cycles=sum(e["cycles"] for e in entries),
            median_speedup_x100=int(median * 100),
        )

        payload = {
            "workload": {
                "n": N, "c": C, "h": H, "w": W,
                "kernel": [SPEC.kh, SPEC.kw],
                "stride": [SPEC.sh, SPEC.sw],
            },
            "timing_model": "serial",
            "entries": entries,
            "median_speedup": round(median, 2),
            "modes": {
                "interpreter": "program cache + execute='numeric'",
                "jit": "program cache + execute='jit' (warm kernels)",
            },
            "contract": (
                "outputs, masks and cycle counts bit-identical to the "
                "interpreter; speedup is wall-clock only"
            ),
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")
