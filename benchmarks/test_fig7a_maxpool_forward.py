"""Figure 7a: MaxPool forward, standard vs Im2col, InceptionV3 sizes.

Paper result: the Im2col implementation wins at every size, 3.2x at the
largest input (147,147,64).
"""

import numpy as np
import pytest
from conftest import record_cycles, run_once

from repro.ops import maxpool
from repro.ops.reference import maxpool_forward_ref

SIZES = [(147, 147, 64), (71, 71, 192), (35, 35, 288)]

_results: dict = {}


@pytest.mark.parametrize("hwc", SIZES, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
@pytest.mark.parametrize("impl", ["standard", "im2col"])
def test_fig7a(benchmark, fig7_inputs, hwc, impl):
    layer, x, _, _ = fig7_inputs[hwc]

    def run():
        return maxpool(x, layer.spec, impl=impl, collect_trace=False)

    res = run_once(benchmark, run)
    assert np.array_equal(res.output, maxpool_forward_ref(x, layer.spec))
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _results[(hwc, impl)] = res.cycles


@pytest.mark.parametrize("hwc", SIZES, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
def test_fig7a_speedup(benchmark, hwc, capsys):
    def speedup():
        return _results[(hwc, "standard")] / _results[(hwc, "im2col")]

    s = run_once(benchmark, speedup)
    record_cycles(benchmark, speedup_x100=int(s * 100))
    with capsys.disabled():
        print(f"\nFig7a {hwc}: standard={_results[(hwc, 'standard')]}cy "
              f"im2col={_results[(hwc, 'im2col')]}cy speedup={s:.2f}x "
              f"(paper: up to 3.2x)")
    assert 2.0 <= s <= 4.5
