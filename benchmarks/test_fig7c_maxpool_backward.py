"""Figure 7c: MaxPool backward, vadd merge vs Col2Im merge.

Paper result: the largest speedup of the evaluation, 5.8x at the
largest input -- "given the scattered access pattern of its merge step
and how Col2Im can be used without any extra computations".
"""

import numpy as np
import pytest
from conftest import record_cycles, run_once

from repro.ops import maxpool_backward
from repro.ops.reference import maxpool_backward_ref

SIZES = [(147, 147, 64), (71, 71, 192), (35, 35, 288)]

_results: dict = {}


@pytest.mark.parametrize("hwc", SIZES, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
@pytest.mark.parametrize("impl", ["standard", "col2im"])
def test_fig7c(benchmark, fig7_inputs, hwc, impl):
    layer, x, mask, grad = fig7_inputs[hwc]

    def run():
        return maxpool_backward(mask, grad, layer.spec, layer.h, layer.w,
                                impl=impl, collect_trace=False)

    res = run_once(benchmark, run)
    ref = maxpool_backward_ref(mask, grad, layer.spec, layer.h, layer.w)
    np.testing.assert_allclose(
        res.output.astype(np.float32), ref.astype(np.float32),
        rtol=1e-2, atol=1e-2,
    )
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _results[(hwc, impl)] = res.cycles


@pytest.mark.parametrize("hwc", SIZES, ids=lambda s: f"{s[0]}x{s[1]}x{s[2]}")
def test_fig7c_speedup(benchmark, hwc, capsys):
    def speedup():
        return _results[(hwc, "standard")] / _results[(hwc, "col2im")]

    s = run_once(benchmark, speedup)
    record_cycles(benchmark, speedup_x100=int(s * 100))
    with capsys.disabled():
        print(f"\nFig7c {hwc}: standard={_results[(hwc, 'standard')]}cy "
              f"col2im={_results[(hwc, 'col2im')]}cy speedup={s:.2f}x "
              f"(paper: up to 5.8x)")
    assert 4.0 <= s <= 7.5
