"""Extension bench: AvgPool forward/backward (paper Section V-C).

The paper describes but does not measure the AvgPool variants; this
bench fills that gap with the (71,71,192) InceptionV3 geometry.
"""

import numpy as np
import pytest
from conftest import record_cycles, run_once

from repro.ops import PoolSpec, avgpool, avgpool_backward
from repro.ops.reference import avgpool_backward_ref, avgpool_forward_ref
from repro.workloads import make_gradient, make_input

H = W = 71
C = 192
SPEC = PoolSpec.square(3, 2)

_results: dict = {}


@pytest.mark.parametrize("impl", ["standard", "im2col", "expansion"])
def test_avgpool_forward(benchmark, impl):
    x = make_input(H, W, C, seed=0)

    def run():
        return avgpool(x, SPEC, impl=impl, collect_trace=False)

    res = run_once(benchmark, run)
    assert np.array_equal(res.output, avgpool_forward_ref(x, SPEC))
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _results[("fwd", impl)] = res.cycles


@pytest.mark.parametrize("impl", ["standard", "col2im"])
def test_avgpool_backward(benchmark, impl):
    oh, ow = SPEC.out_hw(H, W)
    grad = make_gradient(-(-C // 16), oh, ow, seed=1)

    def run():
        return avgpool_backward(grad, SPEC, H, W, impl=impl,
                                collect_trace=False)

    res = run_once(benchmark, run)
    ref = avgpool_backward_ref(grad, SPEC, H, W)
    np.testing.assert_allclose(
        res.output.astype(np.float32), ref.astype(np.float32),
        rtol=1e-2, atol=1e-2,
    )
    record_cycles(benchmark, simulated_cycles=res.cycles)
    _results[("bwd", impl)] = res.cycles


def test_avgpool_speedups(benchmark, capsys):
    def run():
        return (
            _results[("fwd", "standard")] / _results[("fwd", "im2col")],
            _results[("bwd", "standard")] / _results[("bwd", "col2im")],
        )

    fwd, bwd = run_once(benchmark, run)
    with capsys.disabled():
        print(f"\nAvgPool (71,71,192): forward speedup {fwd:.2f}x, "
              f"backward speedup {bwd:.2f}x (paper predicts 'the access "
              f"pattern stays the same' as MaxPool)")
    assert fwd > 2.0
    assert bwd > 3.5
