"""Simulator throughput guard: program cache + cycles-only fast path.

The paper's chip-level numbers are sweeps over many ``(N, C1)`` tiles
whose programs are identical up to global-memory offsets.  The seed
driver re-lowered every tile in Python (~1.9 s for a toy 2x4x56x56
MaxPool); the program cache lowers once per unique geometry and the
``execute="cycles"`` mode skips the NumPy data pass, which is what the
figure benches run on.

This guard measures the wall-clock of a Table-1-scale workload on the
seed path (uncached, numeric) and on the fast path (cached, cycles-only),
asserts the cycle counts are identical and the speedup is at least 5x,
and exports ``BENCH_sim_throughput.json`` at the repo root so the perf
trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.config import ASCEND910
from repro.ops import PoolSpec
from repro.ops.base import run_forward
from repro.ops.registry import forward_impl
from repro.sim import ProgramCache
from repro.workloads import make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_sim_throughput.json"

#: The microbench from the issue: a (2, 4, 56, 56, 16) MaxPool --
#: VGG16-class 56x56 rows of Table 1 -- yielding 40 identical tiles on
#: the 32-core Ascend 910.
N, C = 2, 64
H = W = 56
SPEC = PoolSpec.square(3, 2)
IMPLS = ("standard", "im2col")


def _run(
    execute: str, cache: ProgramCache | None, model: str = "serial"
) -> int:
    x = make_input(H, W, C, n=N, seed=0)
    total = 0
    for name in IMPLS:
        impl = forward_impl(name, "max")
        total += run_forward(
            x, SPEC, impl, ASCEND910, collect_trace=False,
            execute=execute, cache=cache, model=model,
        ).cycles
    return total


def _timed(execute: str, cache: ProgramCache | None) -> tuple[int, float]:
    t0 = time.perf_counter()
    cycles = _run(execute, cache)
    return cycles, time.perf_counter() - t0


class TestSimThroughput:
    def test_fast_path_speedup_and_export(self, benchmark):
        # Seed path: per-tile lowering, numeric execution.
        seed_cycles, seed_seconds = _timed("numeric", cache=None)

        # Fast path: one lowering per geometry, analytic cycles.
        # (benchmark the steady state: the first call warms the cache,
        # exactly as a figure sweep's first repeat does.)
        cache = ProgramCache()
        _run("cycles", cache)  # warm
        fast_cycles, fast_seconds = _timed("cycles", cache)
        run_once(benchmark, lambda: _run("cycles", cache))

        assert fast_cycles == seed_cycles, (
            "cycles-only fast path must be cycle-identical to the "
            f"uncached numeric path: {fast_cycles} != {seed_cycles}"
        )
        speedup = seed_seconds / fast_seconds
        assert speedup >= 5.0, (
            f"fast path only {speedup:.1f}x faster "
            f"({seed_seconds:.3f}s -> {fast_seconds:.3f}s)"
        )

        # Scoreboard timing model on the same workload: the scheduler
        # invariant guarantees the pipelined makespan never exceeds the
        # serial one, so the exported ratio is a calibration statistic
        # (how much cross-unit overlap the kernels expose), not noise.
        pipelined_cycles = _run("cycles", cache, model="pipelined")
        ratio = pipelined_cycles / seed_cycles
        assert ratio <= 1.0, (
            "pipelined makespan exceeded the serial cycle count: "
            f"{pipelined_cycles} > {seed_cycles}"
        )

        record_cycles(
            benchmark,
            total_cycles=seed_cycles,
            seed_wall_ms=int(seed_seconds * 1000),
            fast_wall_ms=int(fast_seconds * 1000),
        )
        payload = {
            "workload": {
                "n": N, "c": C, "h": H, "w": W,
                "kernel": [SPEC.kh, SPEC.kw],
                "stride": [SPEC.sh, SPEC.sw],
                "impls": list(IMPLS),
            },
            "cycles": seed_cycles,
            "timing_model": "serial",
            "pipelined_cycles": pipelined_cycles,
            "pipelined_serial_ratio": round(ratio, 4),
            "seed_seconds": round(seed_seconds, 6),
            "fast_seconds": round(fast_seconds, 6),
            "speedup": round(speedup, 2),
            "modes": {
                "seed": "uncached + numeric",
                "fast": "program cache + execute='cycles'",
            },
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")

    def test_cached_numeric_not_slower(self, benchmark):
        """The bit-exact numeric path also benefits from the cache."""
        seed_cycles, seed_seconds = _timed("numeric", cache=None)
        cache = ProgramCache()
        _run("numeric", cache)  # warm
        cached_cycles, cached_seconds = _timed("numeric", cache)
        run_once(benchmark, lambda: _run("numeric", cache))
        assert cached_cycles == seed_cycles
        # generous bound: must never regress past the seed path
        assert cached_seconds <= seed_seconds * 1.10
        record_cycles(
            benchmark,
            total_cycles=cached_cycles,
            seed_wall_ms=int(seed_seconds * 1000),
            cached_wall_ms=int(cached_seconds * 1000),
        )
