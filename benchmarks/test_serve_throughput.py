"""Serving-layer throughput: latency SLOs and worker-count scaling.

Drives a mixed-tenant burst of pooling requests through
:class:`repro.serve.PoolService` at several fleet sizes and exports
``BENCH_serve.json`` at the repo root: p50/p99 end-to-end latency,
requests/second versus worker count, and the geometry-coalescing hit
rate.  The burst contains more distinct geometries than workers so the
fleet can actually parallelize (coalescing pins each geometry to one
warm worker), and every response is checked byte-identical to a direct
:mod:`repro.ops.api` call -- the service must never trade correctness
for throughput.
"""

from __future__ import annotations

import asyncio
import json
import os
import statistics
import time
from pathlib import Path

import numpy as np

from repro.ops import PoolSpec
from repro.serve import PoolRequest, PoolService, execute_request, serve_burst
from repro.workloads import make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_serve.json"

SPEC = PoolSpec.square(3, 2)
WORKER_COUNTS = (1, 2, 4)
#: Distinct pooling geometries in the burst (different input extents).
EXTENTS = (16, 18, 20, 22)
#: Requests per geometry per burst round.
REPEATS = 6
TENANTS = ("alpha", "beta", "gamma")
TIMEOUT = 300.0


def _requests() -> list[PoolRequest]:
    reqs = []
    i = 0
    for rep in range(REPEATS):
        for ext in EXTENTS:
            reqs.append(PoolRequest(
                kind="maxpool",
                x=make_input(ext, ext, 32, seed=rep),
                spec=SPEC,
                tenant=TENANTS[i % len(TENANTS)],
            ))
            i += 1
    return reqs


async def _drive(workers: int, requests: list[PoolRequest]) -> dict:
    async with PoolService(
        workers=workers, queue_limit=len(requests) + 8,
    ) as svc:
        # Warm each geometry once (cold lowering + affinity binding) so
        # the measured burst reflects the coalesced steady state at
        # every fleet size equally.
        warm = [
            PoolRequest(kind="maxpool", x=make_input(ext, ext, 32, seed=99),
                        spec=SPEC)
            for ext in EXTENTS
        ]
        await serve_burst(svc, warm)

        # Best-of-3 rounds: throughput of the steady state, not of
        # whatever the host scheduler did to one particular burst.
        wall = float("inf")
        responses = None
        for _ in range(3):
            t0 = time.perf_counter()
            round_responses = await serve_burst(svc, requests)
            round_wall = time.perf_counter() - t0
            if round_wall < wall:
                wall, responses = round_wall, round_responses

        latencies_ms = sorted(r.latency * 1e3 for r in responses)
        n = len(latencies_ms)
        cache_stats = await svc.worker_cache_stats()
        return {
            "workers": workers,
            "requests": n,
            "wall_seconds": round(wall, 4),
            "req_per_s": round(n / wall, 2),
            "p50_ms": round(statistics.median(latencies_ms), 3),
            "p99_ms": round(latencies_ms[min(n - 1, int(n * 0.99))], 3),
            "max_ms": round(latencies_ms[-1], 3),
            "coalescing_hit_rate": round(svc.coalescer.hit_rate, 4),
            "coalesced_responses": sum(1 for r in responses if r.coalesced),
            "worker_cache_hits": sum(
                s["hits"] for s in cache_stats.values()
            ),
            "responses": responses,
        }


class TestServeThroughput:
    def test_scaling_and_export(self, benchmark):
        requests = _requests()
        direct = execute_request(requests[0])

        rows = []
        for workers in WORKER_COUNTS:
            row = asyncio.run(
                asyncio.wait_for(_drive(workers, requests), TIMEOUT)
            )
            responses = row.pop("responses")
            # correctness gate: served == direct, byte for byte
            got = responses[0]
            assert np.array_equal(got.output, direct.output)
            assert got.cycles == direct.cycles
            # every geometry was re-served from an affinity binding
            assert row["coalescing_hit_rate"] > 0, row
            assert row["coalesced_responses"] == row["requests"], row
            assert row["worker_cache_hits"] > 0, row
            rows.append(row)

        by_workers = {r["workers"]: r for r in rows}
        best_multi = max(
            by_workers[w]["req_per_s"] for w in WORKER_COUNTS if w > 1
        )
        single = by_workers[1]["req_per_s"]
        # With real cores the fleet must actually scale: a multi-worker
        # fleet beats the single worker.  A single-core host cannot run
        # two worker processes at once, so there the bar is bounded
        # overhead instead: growing the fleet must not *cost*
        # throughput (the service layer's own bookkeeping stays cheap).
        multicore = (os.cpu_count() or 1) > 1
        if multicore:
            assert best_multi > single, rows
        else:
            assert best_multi >= 0.8 * single, rows

        # wall-clock of record: the burst at the largest fleet size
        run_once(
            benchmark,
            lambda: asyncio.run(asyncio.wait_for(
                _drive(max(WORKER_COUNTS), requests), TIMEOUT
            )),
        )
        record_cycles(
            benchmark,
            request_cycles=direct.cycles,
            req_per_s_x100=int(best_multi * 100),
        )

        payload = {
            "workload": {
                "kind": "maxpool",
                "impl": "im2col",
                "kernel": [SPEC.kh, SPEC.kw],
                "stride": [SPEC.sh, SPEC.sw],
                "extents": list(EXTENTS),
                "c": 32,
                "execute": "numeric",
            },
            "burst": {
                "requests": len(requests),
                "geometries": len(EXTENTS),
                "tenants": len(TENANTS),
                "repeats": REPEATS,
            },
            "host_cores": os.cpu_count(),
            "scaling_contract": (
                "strict (multi-worker beats single)" if multicore
                else "single-core host: bounded service overhead"
            ),
            "scaling": rows,
            "coalescing_hit_rate": max(
                r["coalescing_hit_rate"] for r in rows
            ),
            "contract": (
                "served responses byte-identical to direct repro.ops.api "
                "calls; latency is end-to-end (admission to completion); "
                "req/s is best-of-2 steady-state bursts; scaling is "
                "bounded by host_cores"
            ),
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")
