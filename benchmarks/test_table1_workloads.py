"""Table I: MaxPool input sizes in CNNs.

Regenerates the table and validates every configuration end-to-end (the
geometry must produce the output grids the CNNs expect).
"""

from conftest import run_once

from repro.bench import render_table1, table1_rows
from repro.workloads import CNN_MAXPOOL_LAYERS


def test_table1(benchmark, capsys):
    text = run_once(benchmark, render_table1)
    rows = dict(table1_rows())
    assert rows["InceptionV3"][0] == "147,147,64"
    assert rows["VGG16"][0] == "224,224,64"
    with capsys.disabled():
        print()
        print(text)


def test_table1_geometry_consistency(benchmark):
    """Every Table I layer halves (floor) its spatial extent."""

    def check():
        for layers in CNN_MAXPOOL_LAYERS.values():
            for l in layers:
                oh, ow = l.out_hw()
                assert oh in (l.h // 2, (l.h - 1) // 2), l.label
        return True

    assert run_once(benchmark, check)
