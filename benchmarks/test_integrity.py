"""Integrity SLOs: detection rate, audit overhead, false positives.

Drives seeded bursts through :class:`repro.serve.PoolService` with
:class:`repro.serve.IntegrityConfig` active and exports
``BENCH_integrity.json`` at the repo root:

* **detection**: a corrupt-core burst (worker 0 flips one output bit
  per reply, pre-fingerprint) at ``audit_rate=1.0`` -- every response
  served by the corrupt slot must trigger an audit mismatch and the
  slot must end convicted and quarantined (``detection_rate == 1.0``);
* **false positives**: the same burst with no corruption -- zero
  fingerprint failures, zero audit mismatches, zero incidents;
* **overhead**: audit work amplification (``audits_run / completed``)
  and wall-clock ratio versus the fingerprint-only burst at sampled
  audit rates; the work overhead at ``audit_rate=0.05`` must stay
  within the 15% budget.

The audit sampler is a deterministic hash of (seed, request id), so
the sampled-rate rows are reproducible run to run.
"""

from __future__ import annotations

import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

from repro.ops import PoolSpec
from repro.serve import (
    IntegrityConfig,
    PoolRequest,
    PoolService,
    execute_request,
)
from repro.sim import RetryPolicy
from repro.workloads import make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_integrity.json"

SPEC = PoolSpec.square(3, 2)
WORKERS = 3
EXTENTS = (16, 18, 20)
REPEATS = 8
#: The overhead burst is longer so the sampled audit rates actually
#: sample: at 60 requests the deterministic sampler draws audits at
#: every non-zero rate row (24 would draw none below rate 0.10).
OVERHEAD_REPEATS = 20
TIMEOUT = 300.0
#: Work-amplification budget at the recommended sampling rate.
OVERHEAD_BUDGET = 0.15
AUDIT_RATES = (0.0, 0.01, 0.05, 0.10)

RETRY = RetryPolicy(max_attempts=6, quarantine_after=2)


def _requests(corrupt: bool, repeats: int = REPEATS) -> list[PoolRequest]:
    reqs = []
    for rep in range(repeats):
        for ext in EXTENTS:
            kw: dict = {}
            if corrupt:
                kw["chaos_corrupt_output"] = (0,)
            reqs.append(PoolRequest(
                kind="maxpool",
                x=make_input(ext, ext, 32, seed=rep),
                spec=SPEC,
                tenant=f"tenant{rep % 3}",
                **kw,
            ))
    return reqs


async def _burst(requests, integrity: IntegrityConfig) -> dict:
    async with PoolService(
        workers=WORKERS,
        queue_limit=len(requests) + 8,
        retry=RETRY,
        integrity=integrity,
    ) as svc:
        t0 = time.perf_counter()
        responses = []
        # Sequential submission: placement ties break to slot 0, so a
        # corrupt worker 0 is guaranteed traffic before conviction.
        for r in requests:
            responses.append(await svc.submit(r))
        # Drain outstanding audit / tie-break probes before reading
        # the counters (probes resolve or hit probe_timeout_ms).
        for _ in range(200):
            if not svc._dispatched and not svc._requests:
                break
            await asyncio.sleep(0.02)
        wall = time.perf_counter() - t0
        stats = svc.stats
        return {
            "requests": len(requests),
            "wall_seconds": round(wall, 4),
            "completed": stats.completed,
            "audits_run": stats.audits_run,
            "audit_mismatches": stats.audit_mismatches,
            "fingerprint_failures": stats.fingerprint_failures,
            "corrupt_workers_quarantined":
                stats.corrupt_workers_quarantined,
            "quarantined": list(stats.quarantined),
            "incidents": [
                {"slot": e.slot, "divergence": e.divergence}
                for e in svc.integrity_errors
            ],
            "responses": responses,
        }


class TestIntegrity:
    def test_slos_and_export(self, benchmark):
        clean_reqs = _requests(corrupt=False)
        corrupt_reqs = _requests(corrupt=True)
        direct = {
            ext: execute_request(PoolRequest(
                kind="maxpool", x=make_input(ext, ext, 32, seed=0),
                spec=SPEC,
            ))
            for ext in EXTENTS
        }

        # -- detection: corrupt core under full auditing ----------------
        detect = asyncio.run(asyncio.wait_for(
            _burst(corrupt_reqs, IntegrityConfig(audit_rate=1.0)),
            TIMEOUT,
        ))
        responses = detect.pop("responses")
        served_by_corrupt = sum(r.worker == 0 for r in responses)
        assert served_by_corrupt >= 1, "corrupt slot never got traffic"
        # 100% detection: every corruptly-served response produced an
        # audit mismatch (mismatches can exceed it when an audit leg of
        # a clean response lands on the corrupt worker -- also a true
        # positive).
        assert detect["audit_mismatches"] >= served_by_corrupt, detect
        assert any(i["slot"] == 0 for i in detect["incidents"]), detect
        assert 0 in detect["quarantined"], detect
        detect["served_by_corrupt_slot"] = served_by_corrupt
        detect["detection_rate"] = round(
            min(detect["audit_mismatches"], served_by_corrupt)
            / served_by_corrupt, 4,
        )
        assert detect["detection_rate"] == 1.0, detect

        # -- false positives: same machinery, clean fleet ---------------
        clean = asyncio.run(asyncio.wait_for(
            _burst(clean_reqs, IntegrityConfig(audit_rate=1.0)),
            TIMEOUT,
        ))
        for req, res in zip(clean_reqs, clean.pop("responses")):
            d = execute_request(req)
            assert np.array_equal(res.output, d.output), req.x.shape
            assert res.cycles == d.cycles
        false_positives = (
            clean["audit_mismatches"] + clean["fingerprint_failures"]
            + len(clean["incidents"])
        )
        assert false_positives == 0, clean
        clean["false_positives"] = false_positives

        # -- overhead: audit amplification across sampled rates ---------
        overhead_reqs = _requests(corrupt=False, repeats=OVERHEAD_REPEATS)
        rows = []
        baseline_wall = None
        for rate in AUDIT_RATES:
            row = asyncio.run(asyncio.wait_for(
                _burst(overhead_reqs, IntegrityConfig(audit_rate=rate)),
                TIMEOUT,
            ))
            row.pop("responses")
            if rate == 0.0:
                baseline_wall = row["wall_seconds"]
            work_overhead = row["audits_run"] / row["completed"]
            rows.append({
                "audit_rate": rate,
                "audits_run": row["audits_run"],
                "completed": row["completed"],
                "work_overhead": round(work_overhead, 4),
                "wall_seconds": row["wall_seconds"],
                "wall_ratio_vs_rate0": round(
                    row["wall_seconds"] / baseline_wall, 4,
                ),
            })
            if rate == 0.05:
                assert work_overhead <= OVERHEAD_BUDGET, rows[-1]

        # wall-clock of record: the detection burst (the scenario the
        # integrity machinery exists for)
        run_once(
            benchmark,
            lambda: asyncio.run(asyncio.wait_for(
                _burst(corrupt_reqs, IntegrityConfig(audit_rate=1.0)),
                TIMEOUT,
            )),
        )
        record_cycles(
            benchmark,
            request_cycles=direct[EXTENTS[0]].cycles,
            detection_rate_x100=int(detect["detection_rate"] * 100),
        )

        payload = {
            "workload": {
                "kind": "maxpool",
                "impl": "im2col",
                "kernel": [SPEC.kh, SPEC.kw],
                "stride": [SPEC.sh, SPEC.sw],
                "extents": list(EXTENTS),
                "c": 32,
                "requests": len(clean_reqs),
                "workers": WORKERS,
            },
            "host_cores": os.cpu_count(),
            "detection": detect,
            "clean": clean,
            "audit_overhead": rows,
            "overhead_budget": OVERHEAD_BUDGET,
            "contract": (
                "detection burst: worker 0 flips one output bit per "
                "reply pre-fingerprint; detection_rate = corrupt-served "
                "responses whose audits mismatched / corrupt-served "
                "responses (must be 1.0); false_positives counts audit "
                "mismatches + fingerprint failures + incidents on a "
                "clean fleet (must be 0); work_overhead = audits_run / "
                "completed at the sampled audit_rate, budget 0.15 at "
                "rate 0.05; wall ratios are host-noise-prone and "
                "recorded unasserted"
            ),
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")
