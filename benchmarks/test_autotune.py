"""Autotuner gain guard: cost-model search vs. the heuristic planner.

The plan -> lower -> dispatch split (:mod:`repro.plan.planner`) makes
the planner's choices -- row chunk, implementation variant, timing
model -- an enumerable :class:`~repro.plan.ExecutionPlan`, and the
cycles-only fast path makes exhaustive search cheap.  This guard runs
the full search (:func:`repro.plan.autotune_grid`) over every
DEFAULT_GRID workload, asserts the winning plans actually win --
median cycles-won >= 1.0x and best-case > 1.05x vs. the default plan
-- spot-checks that a winner re-executed *numerically* is
bit-identical to the default plan at exactly the predicted cycle
count, and exports ``BENCH_autotune.json`` at the repo root so the
gain trajectory is tracked across PRs.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from repro.config import ASCEND910
from repro.dtypes import FLOAT16
from repro.ops.base import run_forward
from repro.ops.registry import forward_impl
from repro.plan import (
    AutotuneTable,
    autotune_grid,
    grid_workloads,
    summarize_rows,
    tuned_plan,
)
from repro.sim import ProgramCache
from repro.validate import DEFAULT_GRID
from repro.workloads import make_input

from conftest import record_cycles, run_once

REPO_ROOT = Path(__file__).resolve().parent.parent
EXPORT = REPO_ROOT / "BENCH_autotune.json"

MODELS = ("serial", "pipelined")
MIN_MEDIAN_WON = 1.0
MIN_BEST_WON = 1.05


class TestAutotune:
    def test_cycles_won_and_export(self, benchmark, tmp_path):
        workloads = grid_workloads(DEFAULT_GRID)
        table, rows = run_once(
            benchmark,
            lambda: autotune_grid(workloads, ASCEND910, models=MODELS),
        )
        summary = summarize_rows(rows)
        assert summary["workloads"] == len(workloads)
        assert summary["median_cycles_won"] >= MIN_MEDIAN_WON, summary
        assert summary["best_cycles_won"] > MIN_BEST_WON, summary
        # The heuristic default plan is always in the search space, so
        # no workload may ever lose cycles to the tuner.
        assert all(row["cycles_won"] >= 1.0 for row in rows), rows

        # Semantic spot check on the biggest forward win: the tuned
        # plan's numeric outputs are bit-identical to the default
        # plan's (the search only swaps bit-exact variants) and its
        # cycle count lands exactly on the search's cycles-mode
        # prediction (the cost model is data-independent).
        best_row = max(
            (r for r in rows if r["kind"] == "fwd"),
            key=lambda r: r["cycles_won"],
        )
        h, w, c, n, spec = DEFAULT_GRID[rows.index(best_row) // 2]
        x = make_input(h, w, c, n=n, seed=0)
        impl = forward_impl(best_row["requested_impl"], "max")
        default = run_forward(
            x, spec, impl, ASCEND910, collect_trace=False,
        )
        plan = tuned_plan(
            "fwd", impl, spec, FLOAT16, n, x.shape[1], h, w,
            ASCEND910, table=table,
        )
        assert plan is not None, best_row
        tuned = run_forward(
            x, spec, impl, ASCEND910, collect_trace=False,
            cache=ProgramCache(), plan=plan,
        )
        assert np.array_equal(tuned.output, default.output), best_row
        assert tuned.cycles == best_row["best_cycles"], (
            tuned.cycles, best_row,
        )
        assert tuned.plan == plan

        # Determinism of the persisted encoding: a second search from
        # scratch serializes to the byte-identical table.
        table2, _ = autotune_grid(workloads, ASCEND910, models=MODELS)
        assert table.to_json() == table2.to_json()
        saved = table.save(tmp_path / "table.json")
        assert AutotuneTable.load(saved).to_json() == table.to_json()

        record_cycles(
            benchmark,
            baseline_cycles=sum(r["baseline_cycles"] for r in rows),
            best_cycles=sum(r["best_cycles"] for r in rows),
            median_won_x1000=int(summary["median_cycles_won"] * 1000),
        )

        payload = {
            "grid_entries": len(DEFAULT_GRID),
            "models": list(MODELS),
            "chunks": "exhaustive",
            "execute_mode": "cycles",
            "workloads": rows,
            "summary": summary,
            "contract": (
                "search costs plans via execute='cycles' only; the "
                "winning plan re-executed numerically is bit-identical "
                "to the default plan at the predicted cycle count"
            ),
        }
        EXPORT.write_text(json.dumps(payload, indent=2) + "\n")
