"""Figures 8a-8c: MaxPool implementation sweep by stride, single core.

Paper results:

* 8a (stride 1): the direct implementation is the fastest -- the
  contiguous patches let the standard lowering saturate the mask while
  Im2col pays 9x data duplication;
* 8b (stride 2): Im2col < expansion < X-Y split < standard (cycles);
* 8c (stride 3, no overlap): Im2col and expansion beat standard.

Each panel benches the first, middle and last (tiling-threshold) sizes
of the paper's sweep; the figure-series builder used by
``examples/stride_sweep.py --full`` covers every size.
"""

import pytest
from conftest import record_cycles, run_once

from repro.bench import fig8, fig8_sizes, render_figure

_figs: dict = {}


def _sizes(stride):
    sizes = fig8_sizes(stride)
    return sorted({sizes[0], sizes[len(sizes) // 2], sizes[-1]})


@pytest.mark.parametrize("stride", [1, 2, 3], ids=["8a", "8b", "8c"])
def test_fig8_panel(benchmark, stride, capsys):
    def run():
        return fig8(stride, sizes=_sizes(stride))

    fig = run_once(benchmark, run)
    _figs[stride] = fig
    for impl, ms in fig.series.items():
        record_cycles(
            benchmark,
            **{f"{impl.replace(' ', '_')}_at_threshold": ms[-1].cycles},
        )
    with capsys.disabled():
        print()
        print(render_figure(fig))


def test_fig8a_standard_wins_at_threshold(benchmark):
    def check():
        fig = _figs[1]
        std = fig.cycles("Maxpool")[-1]
        return (std < fig.cycles("Maxpool with Im2col")[-1]
                and std < fig.cycles("Maxpool with expansion")[-1])

    assert run_once(benchmark, check)


def test_fig8b_ordering(benchmark):
    def check():
        fig = _figs[2]
        i = fig.cycles("Maxpool with Im2col")[-1]
        e = fig.cycles("Maxpool with expansion")[-1]
        x = fig.cycles("Maxpool with X-Y split")[-1]
        s = fig.cycles("Maxpool")[-1]
        return i < e < x < s

    assert run_once(benchmark, check)


def test_fig8c_ordering(benchmark):
    def check():
        fig = _figs[3]
        i = fig.cycles("Maxpool with Im2col")[-1]
        e = fig.cycles("Maxpool with expansion")[-1]
        s = fig.cycles("Maxpool")[-1]
        return i < e < s

    assert run_once(benchmark, check)
